"""Tests for dataset generators, g2o I/O, and the streaming runner."""

import os

import numpy as np
import pytest

from repro.datasets import (
    cab1_dataset,
    cab2_dataset,
    manhattan_dataset,
    read_g2o,
    run_online,
    sphere_dataset,
    write_g2o,
)
from repro.factorgraph import (
    BetweenFactorSE2,
    BetweenFactorSE3,
    IsotropicNoise,
    Values,
)
from repro.geometry import SE2, SE3, SO3
from repro.solvers import ISAM2


class TestManhattan:
    def test_full_scale_counts(self):
        data = manhattan_dataset(scale=1.0)
        assert data.num_steps == 3500
        # Paper: 5453 edges; the generator must land in the same regime.
        assert 4800 <= data.num_edges <= 6200
        assert not data.is_3d

    def test_scaling(self):
        data = manhattan_dataset(scale=0.1)
        assert data.num_steps == 350

    def test_deterministic(self):
        a = manhattan_dataset(scale=0.05, seed=3)
        b = manhattan_dataset(scale=0.05, seed=3)
        assert a.num_edges == b.num_edges
        assert a.ground_truth[10].is_close(b.ground_truth[10])

    def test_has_closures(self):
        data = manhattan_dataset(scale=0.3)
        assert data.num_closures > 10

    def test_poses_on_lattice(self):
        data = manhattan_dataset(scale=0.02)
        for pose in data.ground_truth.values():
            assert abs(pose.x - round(pose.x)) < 1e-6
            assert abs(pose.y - round(pose.y)) < 1e-6

    def test_guesses_drift_from_truth(self):
        data = manhattan_dataset(scale=0.1)
        last = data.steps[-1]
        err = np.linalg.norm(
            last.guess.t - data.ground_truth[last.key].t)
        assert err > 0.01  # dead reckoning accumulates noise


class TestSphere:
    def test_full_scale_counts(self):
        data = sphere_dataset(scale=1.0)
        assert data.num_steps == 2000
        assert 3800 <= data.num_edges <= 4100  # paper: 3951
        assert data.is_3d

    def test_poses_on_sphere(self):
        data = sphere_dataset(scale=0.05, radius=25.0)
        for pose in data.ground_truth.values():
            assert np.linalg.norm(pose.t) == pytest.approx(25.0, rel=1e-6)

    def test_ring_closures_are_regular(self):
        data = sphere_dataset(scale=0.1, poses_per_ring=50)
        # Pose 60 must close against pose 10 (one ring above).
        closures = data.steps[60].closures
        assert any(f.keys == (10, 60) for f in closures)

    def test_dense_after_first_ring(self):
        data = sphere_dataset(scale=0.1, poses_per_ring=50)
        late = [s for s in data.steps[51:]]
        assert all(len(s.factors) == 2 for s in late)


class TestCab:
    def test_cab1_counts(self):
        data = cab1_dataset(scale=1.0)
        assert data.num_steps == 464
        # Paper: 2287 edges.
        assert 1800 <= data.num_edges <= 2800
        assert data.is_3d

    def test_cab2_counts(self):
        data = cab2_dataset(scale=1.0)
        assert data.num_steps == 3000
        # Paper: 15144 edges.
        assert 11000 <= data.num_edges <= 18000

    def test_cab2_has_cross_session_closures(self):
        data = cab2_dataset(scale=0.5)
        session_len = data.num_steps // 5
        cross = [
            f for step in data.steps for f in step.closures
            if f.keys[1] - f.keys[0] > session_len
        ]
        assert len(cross) > 10

    def test_poses_inside_building(self):
        data = cab1_dataset(scale=0.3)
        for pose in data.ground_truth.values():
            assert -0.5 <= pose.t[0] <= 42.5
            assert -0.5 <= pose.t[1] <= 42.5

    def test_truncated(self):
        data = cab1_dataset(scale=0.5).truncated(20)
        assert data.num_steps == 20
        assert set(data.ground_truth.keys()) == set(range(20))

    def test_describe(self):
        text = cab1_dataset(scale=0.05).describe()
        assert "CAB1" in text and "steps" in text


class TestG2O:
    def test_se2_roundtrip(self, tmp_path):
        values = Values()
        values.insert(0, SE2(0.0, 0.0, 0.0))
        values.insert(1, SE2(1.0, 2.0, 0.5))
        factors = [BetweenFactorSE2(0, 1, SE2(1.0, 2.0, 0.5),
                                    IsotropicNoise(3, 0.1))]
        path = os.path.join(tmp_path, "test.g2o")
        write_g2o(path, values, factors)
        values2, factors2 = read_g2o(path)
        assert values2.at(1).is_close(values.at(1), tol=1e-6)
        assert len(factors2) == 1
        assert factors2[0].keys == (0, 1)
        np.testing.assert_allclose(
            factors2[0].noise.covariance,
            factors[0].noise.covariance, atol=1e-6)

    def test_se3_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        values = Values()
        values.insert(0, SE3())
        pose = SE3(SO3.exp(rng.normal(scale=0.5, size=3)),
                   rng.normal(size=3))
        values.insert(1, pose)
        factors = [BetweenFactorSE3(0, 1, pose, IsotropicNoise(6, 0.2))]
        path = os.path.join(tmp_path, "test3d.g2o")
        write_g2o(path, values, factors)
        values2, factors2 = read_g2o(path)
        assert values2.at(1).is_close(pose, tol=1e-6)
        assert factors2[0].measured.is_close(pose, tol=1e-6)

    def test_dataset_export(self, tmp_path):
        data = manhattan_dataset(scale=0.01)
        values = Values()
        for key, pose in data.ground_truth.items():
            values.insert(key, pose)
        factors = [f for step in data.steps for f in step.factors
                   if len(f.keys) == 2]
        path = os.path.join(tmp_path, "m.g2o")
        write_g2o(path, values, factors)
        values2, factors2 = read_g2o(path)
        assert len(values2) == len(values)
        assert len(factors2) == len(factors)


class TestRunOnline:
    def test_isam2_on_small_manhattan(self):
        data = manhattan_dataset(scale=0.02)
        solver = ISAM2(relin_threshold=0.05)
        run = run_online(solver, data)
        assert len(run.reports) == data.num_steps
        assert len(run.step_rmse) == data.num_steps
        # The incremental estimate must match the batch optimum (the
        # remaining ground-truth error is odometry drift, not solver
        # error — this prefix has no loop closures).
        from repro.factorgraph import FactorGraph, Values
        from repro.solvers import GaussNewton
        graph = FactorGraph()
        initial = Values()
        for step in data.steps:
            initial.insert(step.key, step.guess)
            for factor in step.factors:
                graph.add(factor)
        batch = GaussNewton(max_iterations=30).optimize(graph, initial)
        estimate = solver.estimate()
        # One Gauss-Newton step per update with a 0.05 relinearization
        # threshold tracks the converged batch optimum closely but not
        # exactly (the standard ISAM2 approximation).
        for key in batch.values.keys():
            assert estimate.at(key).is_close(batch.values.at(key),
                                             tol=5e-3)

    def test_error_every_subsamples(self):
        data = manhattan_dataset(scale=0.02)
        run = run_online(ISAM2(), data, error_every=10)
        assert len(run.step_rmse) < data.num_steps

    def test_max_steps(self):
        data = manhattan_dataset(scale=0.05)
        run = run_online(ISAM2(), data, max_steps=20)
        assert len(run.reports) == 20

    def test_latency_collection_with_soc(self):
        from repro.hardware import supernova_soc
        data = manhattan_dataset(scale=0.02)
        run = run_online(ISAM2(), data, soc=supernova_soc(2),
                         collect_errors=False)
        assert len(run.latencies) == data.num_steps
        assert all(lat.total > 0 for lat in run.latencies)
