"""Tests for alignment, APE, iRMSE, and latency statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factorgraph import Values
from repro.geometry import SE2, SE3, SO3
from repro.metrics import (
    ape_statistics,
    breakdown_means,
    irmse,
    latency_stats,
    translation_errors,
    umeyama_alignment,
)


class TestUmeyama:
    def test_identity(self):
        pts = np.random.default_rng(0).normal(size=(10, 3))
        rot, trans, scale = umeyama_alignment(pts, pts)
        np.testing.assert_allclose(rot, np.eye(3), atol=1e-10)
        np.testing.assert_allclose(trans, np.zeros(3), atol=1e-10)
        assert scale == 1.0

    def test_recovers_rigid_transform(self):
        rng = np.random.default_rng(1)
        src = rng.normal(size=(20, 3))
        true_rot = SO3.exp([0.3, -0.2, 0.5]).matrix()
        true_t = np.array([1.0, -2.0, 0.5])
        dst = (true_rot @ src.T).T + true_t
        rot, trans, scale = umeyama_alignment(src, dst)
        np.testing.assert_allclose(rot, true_rot, atol=1e-9)
        np.testing.assert_allclose(trans, true_t, atol=1e-9)

    def test_recovers_scale(self):
        rng = np.random.default_rng(2)
        src = rng.normal(size=(15, 2))
        dst = 2.5 * src
        _, _, scale = umeyama_alignment(src, dst, with_scale=True)
        assert scale == pytest.approx(2.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((3, 2)), np.zeros((4, 2)))

    @given(st.integers(3, 20), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_alignment_reduces_error(self, n, seed):
        rng = np.random.default_rng(seed)
        src = rng.normal(size=(n, 3))
        rot = SO3.exp(rng.normal(scale=0.5, size=3)).matrix()
        dst = (rot @ src.T).T + rng.normal(size=3)
        r, t, s = umeyama_alignment(src, dst)
        aligned = (s * (r @ src.T)).T + t
        raw_err = np.linalg.norm(src - dst)
        aligned_err = np.linalg.norm(aligned - dst)
        assert aligned_err <= raw_err + 1e-9


class TestTranslationErrors:
    def make_trajectories(self):
        est = Values()
        ref = {}
        for i in range(5):
            est.insert(i, SE2(float(i) + 0.1, 0.0, 0.0))
            ref[i] = SE2(float(i), 0.0, 0.0)
        return est, ref

    def test_unaligned(self):
        est, ref = self.make_trajectories()
        errors = translation_errors(est, ref, range(5))
        np.testing.assert_allclose(errors, 0.1 * np.ones(5), atol=1e-12)

    def test_aligned_removes_offset(self):
        est, ref = self.make_trajectories()
        errors = translation_errors(est, ref, range(5), align=True)
        np.testing.assert_allclose(errors, np.zeros(5), atol=1e-9)

    def test_empty_keys(self):
        est, ref = self.make_trajectories()
        assert translation_errors(est, ref, []).size == 0

    def test_dict_estimate_supported(self):
        _, ref = self.make_trajectories()
        errors = translation_errors(ref, ref, range(5))
        np.testing.assert_allclose(errors, np.zeros(5))

    def test_se3_trajectories(self):
        est = Values()
        ref = {}
        for i in range(4):
            pose = SE3(SO3.identity(), np.array([i, 0.0, 0.0]))
            ref[i] = pose
            est.insert(i, pose.retract(np.array([0.2, 0, 0, 0, 0, 0])))
        errors = translation_errors(est, ref, range(4))
        np.testing.assert_allclose(errors, 0.2 * np.ones(4), atol=1e-9)


class TestApeStatistics:
    def test_max_and_rmse(self):
        est = Values()
        ref = {}
        offsets = [0.0, 0.3, 0.4]
        for i, off in enumerate(offsets):
            est.insert(i, SE2(i + off, 0.0, 0.0))
            ref[i] = SE2(float(i), 0.0, 0.0)
        stats = ape_statistics(est, ref, range(3))
        assert stats["max"] == pytest.approx(0.4)
        assert stats["rmse"] == pytest.approx(
            np.sqrt(np.mean(np.array(offsets) ** 2)))

    def test_empty(self):
        stats = ape_statistics(Values(), {}, [])
        assert stats == {"max": 0.0, "rmse": 0.0}


class TestIrmse:
    def test_mean_of_steps(self):
        assert irmse([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert irmse([]) == 0.0

    def test_penalizes_transient_errors(self):
        # Two trajectories with the same final error; the one that was bad
        # in the middle must have a larger iRMSE — the metric's raison
        # d'etre (Eq. 3).
        steady = [0.1] * 10
        spiky = [0.1] * 5 + [5.0] * 4 + [0.1]
        assert irmse(spiky) > irmse(steady)


class TestLatencyStats:
    def test_basic(self):
        stats = latency_stats([0.01, 0.02, 0.05], target_s=0.03)
        assert stats.mean == pytest.approx(0.08 / 3)
        assert stats.median == pytest.approx(0.02)
        assert stats.maximum == pytest.approx(0.05)
        assert stats.miss_rate == pytest.approx(1.0 / 3.0)
        assert not stats.meets_target()

    def test_all_within_target(self):
        stats = latency_stats([0.01, 0.02], target_s=0.033)
        assert stats.miss_rate == 0.0
        assert stats.meets_target()

    def test_empty(self):
        stats = latency_stats([], target_s=0.033)
        assert stats.mean == 0.0
        assert stats.meets_target()

    def test_breakdown_means(self):
        means = breakdown_means([
            {"numeric": 1.0, "symbolic": 0.5},
            {"numeric": 3.0, "symbolic": 1.5},
        ])
        assert means == {"numeric": 2.0, "symbolic": 1.0}

    def test_breakdown_means_empty(self):
        assert breakdown_means([]) == {}


class TestRpe:
    def make(self, drift=0.0, kink_at=None):
        from repro.metrics import rpe_statistics
        est = Values()
        ref = {}
        x = 0.0
        for i in range(8):
            ref[i] = SE2(float(i), 0.0, 0.0)
            step = 1.0 + drift
            if kink_at is not None and i == kink_at:
                step += 0.5
            x = x + step if i else 0.0
            est.insert(i, SE2(x, 0.0, 0.0))
        return est, ref

    def test_zero_for_identical(self):
        from repro.metrics import rpe_statistics
        est, ref = self.make()
        stats = rpe_statistics(est, ref, range(8))
        assert stats == {"rmse": 0.0, "max": 0.0, "mean": 0.0}

    def test_constant_drift_constant_rpe(self):
        from repro.metrics import relative_pose_errors
        est, ref = self.make(drift=0.1)
        errors = relative_pose_errors(est, ref, range(8))
        np.testing.assert_allclose(errors, 0.1 * np.ones(7), atol=1e-12)

    def test_insensitive_to_global_offset(self):
        # Shift the whole estimate: APE changes, RPE does not.
        from repro.metrics import relative_pose_errors
        est, ref = self.make(drift=0.05)
        shifted = Values()
        offset = SE2(10.0, -3.0, 0.4)
        for key in est.keys():
            shifted.insert(key, offset.compose(est.at(key)))
        a = relative_pose_errors(est, ref, range(8))
        b = relative_pose_errors(shifted, ref, range(8))
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_localizes_kink(self):
        from repro.metrics import relative_pose_errors
        est, ref = self.make(kink_at=4)
        errors = relative_pose_errors(est, ref, range(8))
        assert np.argmax(errors) == 3  # pair (3, 4) holds the bad step

    def test_delta_spans(self):
        from repro.metrics import rpe_statistics
        est, ref = self.make(drift=0.1)
        one = rpe_statistics(est, ref, range(8), delta=1)
        three = rpe_statistics(est, ref, range(8), delta=3)
        assert three["mean"] == pytest.approx(3 * one["mean"], rel=1e-6)

    def test_empty(self):
        from repro.metrics import rpe_statistics
        stats = rpe_statistics(Values(), {}, [])
        assert stats["rmse"] == 0.0
