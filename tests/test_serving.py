"""Serving-layer tests: fleet bit-identity, shedding, fault isolation.

The multi-tenant fleet is an execution-strategy change only: with
degradation off, every sharing feature (fused linearization, shared
plan cache, merged level scheduling) must leave each session's
estimates bit-identical (atol 0) to a plain per-session ``update()``
loop.  Degradation sheds relinearization breadth only — the solve of
every admitted step still runs.
"""

import numpy as np
import pytest

from repro.core import RAISAM2
from repro.core.budget import StepBudget
from repro.factorgraph.factors import BetweenFactorSE2, PriorFactorSE2
from repro.factorgraph.noise import IsotropicNoise
from repro.geometry.se2 import SE2
from repro.hardware import supernova_soc
from repro.linalg.parallel import ParallelStepExecutor
from repro.runtime.cost_model import NodeCostModel
from repro.serving import (
    FleetConfig,
    OverloadController,
    SessionFleet,
    compare_snapshots,
    default_solver_factory,
    fleet_workload,
    run_fleet,
    run_isolated,
    snapshot_estimate,
)
from repro.solvers.base import StepReport
from repro.solvers.isam2 import ISAM2

NOISE2 = IsotropicNoise(3, 0.1)


class _PoisonFactor(BetweenFactorSE2):
    """Raises during linearization.  A subclass fails the batch path's
    exact-type test, so it exercises the scalar fallback — and because
    it raises there, the whole fused call fails and the fleet must
    retry per session to isolate the fault."""

    def error_vector(self, values):
        raise RuntimeError("poisoned factor")


def _raisam2_factory():
    return RAISAM2(NodeCostModel(supernova_soc(1)),
                   target_seconds=1.0 / 30.0)


# -- bit-identity ------------------------------------------------------

def test_fleet_bit_identical_isam2():
    workloads = fleet_workload(5, 16)
    factory = default_solver_factory()
    iso = run_isolated(workloads, factory)
    flt, fleet = run_fleet(workloads, factory,
                           FleetConfig(degrade=False))
    compare_snapshots(iso.snapshots, flt.snapshots, atol=0.0)
    assert not fleet.dead_sessions
    assert flt.steps_completed == iso.steps_completed


def test_fleet_bit_identical_raisam2():
    workloads = fleet_workload(4, 14)
    iso = run_isolated(workloads, _raisam2_factory)
    flt, fleet = run_fleet(workloads, _raisam2_factory,
                           FleetConfig(degrade=False))
    compare_snapshots(iso.snapshots, flt.snapshots, atol=0.0)
    # RA-ISAM2 reports keep their selection counters under the fleet.
    report = flt.reports[2][-1]
    assert report.selection_visits >= 0
    assert "estimated_seconds" in report.extras


@pytest.mark.parametrize("fuse,share,merge", [
    (False, True, True),
    (True, False, True),
    (True, True, False),
    (False, False, False),
])
def test_fleet_feature_toggles_stay_bit_identical(fuse, share, merge):
    """Every sharing feature is individually a pure execution-strategy
    change: toggling it off cannot move a single bit."""
    workloads = fleet_workload(3, 12)
    factory = default_solver_factory()
    iso = run_isolated(workloads, factory)
    flt, _ = run_fleet(workloads, factory, FleetConfig(
        fuse_linearization=fuse, share_plan_cache=share,
        merge_levels=merge, degrade=False))
    compare_snapshots(iso.snapshots, flt.snapshots, atol=0.0)


# -- shared plan cache -------------------------------------------------

def test_shared_cache_cross_session_hits_are_hash_only():
    """Identical-topology sessions hit each other's plans, and the
    production hit path never deep-compares signatures — lookup cost is
    O(1) in the factor count behind the signature."""
    workloads = fleet_workload(6, 15)
    _, fleet = run_fleet(workloads, default_solver_factory(),
                         FleetConfig(degrade=False))
    hits, misses, compiles, deep = fleet.plan_cache.snapshot()
    assert hits > 0
    assert compiles == misses
    # Cross-session sharing: far fewer compiles than one-per-session.
    assert compiles * 2 <= hits + misses
    assert deep == 0, \
        "production lookups must use the precomputed signature hash"


def test_per_session_plan_attribution_under_shared_cache():
    """Each session's report attributes exactly its own cache deltas:
    per report, compiles == misses, and fleet totals equal the sums."""
    workloads = fleet_workload(4, 10)
    flt, fleet = run_fleet(workloads, default_solver_factory(),
                           FleetConfig(degrade=False))
    total_hits = total_misses = 0
    for reports in flt.reports.values():
        for report in reports:
            assert report.extras["plan_compiles"] == \
                report.extras["plan_misses"]
            total_hits += report.extras["plan_hits"]
            total_misses += report.extras["plan_misses"]
    hits, misses, _, _ = fleet.plan_cache.snapshot()
    assert total_hits == hits
    assert total_misses == misses


# -- graceful degradation ----------------------------------------------

def test_plan_selection_shadow_counts_shed():
    """At budget_scale < 1 the shadow nominal budget counts exactly the
    variables the unscaled pass would have admitted; the scaled
    selection is a subset of the nominal one."""
    solver = _raisam2_factory()
    rng = np.random.default_rng(7)
    for i in range(12):
        guess = SE2(i + float(rng.normal(0, 0.3)),
                    float(rng.normal(0, 0.3)), 0.0)
        factors = ([BetweenFactorSE2(i - 1, i, SE2(1, 0, 0), NOISE2)]
                   if i else [PriorFactorSE2(0, SE2(), NOISE2)])
        solver.update({i: guess}, factors)
    new = [BetweenFactorSE2(11, 12, SE2(1, 0, 0), NOISE2),
           BetweenFactorSE2(0, 12, SE2(12, 0, 0), NOISE2)]
    nominal = solver.plan_selection(new)
    assert nominal.shed == 0
    scaled = solver.plan_selection(new, budget_scale=0.05)
    assert set(scaled.selected) <= set(nominal.selected)
    assert scaled.shed == len(nominal.selected) - len(scaled.selected)


def _drifting_workload(session_seed: int, num_steps: int):
    """A chain with *noisy* odometry measurements and exact global loop
    closures back to pose 0: each closure contradicts the accumulated
    drift and displaces many poses at once — a large relinearization
    frontier to shed from.  (Noise-free measurements would be mutually
    consistent, leaving nothing for closures to correct.)"""
    from repro.datasets.pose_graph import TimeStep
    rng = np.random.default_rng(900 + session_seed)
    steps = [TimeStep(key=0, guess=SE2(),
                      factors=[PriorFactorSE2(0, SE2(), NOISE2)])]
    for i in range(1, num_steps):
        guess = SE2(i + float(rng.normal(0, 0.2)),
                    float(rng.normal(0, 0.2)),
                    float(rng.normal(0, 0.1)))
        odom = SE2(1.0 + float(rng.normal(0, 0.15)),
                   float(rng.normal(0, 0.15)),
                   float(rng.normal(0, 0.08)))
        factors = [BetweenFactorSE2(i - 1, i, odom, NOISE2)]
        if i >= 6 and i % 6 == 0:
            factors.append(BetweenFactorSE2(
                0, i, SE2(float(i), 0.0, 0.0), NOISE2))
        steps.append(TimeStep(key=i, guess=guess, factors=factors))
    return steps


def test_shedding_never_sheds_the_solve():
    """Force heavy overload: steps still complete, still refactorize,
    and the shed counts land in the per-session reports."""
    workloads = [_drifting_workload(s, 20) for s in range(4)]
    config = FleetConfig(degrade=True, target_seconds=1e-12)
    factory = default_solver_factory(relin_threshold=1e-4)
    flt, fleet = run_fleet(workloads, factory, config)
    assert fleet.controller.relin_scale < 1.0
    assert fleet.controller.overloaded_rounds > 0
    shed_seen = refactored_seen = 0
    for reports in flt.reports.values():
        for report in reports:
            shed_seen += report.extras["shed_relin_count"]
            refactored_seen += report.refactored_nodes
            # Shedding trims relinearization breadth only: the step
            # still refactorized whatever its admitted work touched.
            assert report.refactored_nodes > 0
    assert shed_seen > 0
    assert fleet.aggregates()["shed_relin_total"] == shed_seen
    # Every session completed every round despite the overload.
    assert flt.steps_completed == sum(len(w) for w in workloads)
    # Degraded estimates still exist for every session and key.
    for sid, handle in fleet.sessions.items():
        assert len(snapshot_estimate(handle.solver)) == \
            len(workloads[int(sid)])


def test_scale_optional_never_touches_mandatory():
    budget = StepBudget(1.0, 1.0)
    budget.charge_mandatory(0.4)  # mandatory spend stays spent
    budget.scale_optional(0.5)
    assert budget.remaining == pytest.approx(0.3)
    # Exhausted budgets (mandatory overrun) are not revived by scaling.
    drained = StepBudget(1.0, 1.0)
    drained.charge_mandatory(2.0)
    remaining = drained.remaining
    drained.scale_optional(0.5)
    assert drained.remaining == remaining
    # Scales above 1.0 clamp: scaling never grows a budget.
    before = budget.remaining
    budget.scale_optional(1.5)
    assert budget.remaining == before
    with pytest.raises(ValueError):
        budget.scale_optional(-0.1)


# -- overload controller ------------------------------------------------

def test_overload_controller_backoff_and_recovery():
    ctl = OverloadController(0.01, alpha=1.0, backoff=0.5, recover=2.0,
                             min_scale=0.1)
    assert ctl.observe(0.1) == pytest.approx(0.5)
    assert ctl.observe(0.1) == pytest.approx(0.25)
    for _ in range(10):
        ctl.observe(0.1)
    assert ctl.relin_scale == pytest.approx(0.1)  # floor holds
    ctl.observe(0.001)
    assert ctl.relin_scale == pytest.approx(0.2)  # geometric recovery
    for _ in range(10):
        ctl.observe(0.001)
    assert ctl.relin_scale == 1.0  # capped


def test_overload_controller_validation_and_budget():
    with pytest.raises(ValueError):
        OverloadController(0.0)
    with pytest.raises(ValueError):
        OverloadController(0.01, alpha=0.0)
    with pytest.raises(ValueError):
        OverloadController(0.01, backoff=1.0)
    with pytest.raises(ValueError):
        OverloadController(0.01, recover=1.0)
    with pytest.raises(ValueError):
        OverloadController(0.01, min_scale=0.0)
    ctl = OverloadController(0.01, alpha=1.0, backoff=0.5, recover=2.0)
    full = ctl.fleet_budget(4)
    ctl.observe(1.0)  # overload -> scale 0.5
    degraded = ctl.fleet_budget(4)
    assert degraded.remaining == pytest.approx(full.remaining * 0.5)


# -- fault isolation ----------------------------------------------------

def test_dead_session_does_not_poison_the_fleet():
    workloads = fleet_workload(4, 12)
    factory = default_solver_factory()
    fleet = SessionFleet(FleetConfig(degrade=False))
    for sid in range(len(workloads)):
        fleet.add_session(str(sid), factory())
    for t in range(len(workloads[0])):
        inputs = {}
        for sid, steps in enumerate(workloads):
            step = steps[t]
            factors = list(step.factors)
            if sid == 2 and t == 6:
                factors.append(_PoisonFactor(0, 1, SE2(1, 0, 0), NOISE2))
            inputs[str(sid)] = ({step.key: step.guess}, factors)
        reports = fleet.step(inputs)
        if t >= 6:
            assert "2" not in reports
            assert set(reports) == {"0", "1", "3"}
    dead = fleet.sessions["2"]
    assert not dead.alive
    assert isinstance(dead.error, RuntimeError)
    assert len(fleet.dead_sessions) == 1
    # Survivors match isolated sessions bit for bit despite the death.
    iso = run_isolated([workloads[s] for s in (0, 1, 3)], factory)
    survivors = {i: snapshot_estimate(fleet.sessions[str(s)].solver)
                 for i, s in enumerate((0, 1, 3))}
    compare_snapshots(iso.snapshots, survivors, atol=0.0)


def test_add_session_rejects_duplicates_and_bad_solvers():
    fleet = SessionFleet()
    fleet.add_session("a", ISAM2())
    with pytest.raises(ValueError):
        fleet.add_session("a", ISAM2())
    with pytest.raises(TypeError):
        fleet.add_session("b", object())


# -- report plumbing ----------------------------------------------------

def test_as_dict_preserves_every_extras_key():
    report = StepReport(step=3, refactored_nodes=2,
                        extras={"session_id": 7.0,
                                "shed_relin_count": 4.0,
                                "fleet_plan_hits": 11.0,
                                "custom_probe": 1.5})
    flat = report.as_dict()
    assert flat["step"] == 3.0
    assert flat["refactored_nodes"] == 2.0
    for key, value in report.extras.items():
        assert flat[key] == value


def test_fleet_reports_carry_serving_extras():
    workloads = fleet_workload(3, 8)
    flt, _ = run_fleet(workloads, default_solver_factory(),
                       FleetConfig(degrade=False))
    for sid, reports in flt.reports.items():
        for report in reports:
            assert report.extras["session_id"] == float(sid)
            assert report.extras["shed_relin_count"] == 0.0
            assert report.extras["fleet_plan_hits"] >= 0.0
            assert set(report.extras) <= set(report.as_dict())


# -- level-scheduler priorities ----------------------------------------

def test_run_level_priorities_keep_task_order():
    """Priorities reorder only the submit order: results always come
    back in task order, bit-identical with or without priorities."""
    executor = ParallelStepExecutor(2)
    tasks = [lambda i=i: i * 10 for i in range(8)]
    priorities = [float(i % 3) for i in range(8)]
    plain = executor.run_level(tasks)
    ranked = executor.run_level(tasks, priorities=priorities)
    assert plain == ranked == [i * 10 for i in range(8)]
