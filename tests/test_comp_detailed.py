"""Tests for the explicit tiled COMP cycle model."""

import pytest

from repro.hardware import ComputeAccelerator
from repro.linalg.trace import Op, OpKind


@pytest.fixture
def comp():
    return ComputeAccelerator()


class TestTiledGemm:
    def test_scales_with_output_tiles(self, comp):
        small = comp.op_cycles_detailed(Op(OpKind.GEMM, (4, 4, 16)))
        large = comp.op_cycles_detailed(Op(OpKind.GEMM, (16, 16, 16)))
        # 16x more output tiles -> roughly 16x the pass time.
        assert 8.0 < (large - comp.rocc_overhead) / \
            (small - comp.rocc_overhead) < 20.0

    def test_scales_with_k(self, comp):
        shallow = comp.op_cycles_detailed(Op(OpKind.GEMM, (8, 8, 8)))
        deep = comp.op_cycles_detailed(Op(OpKind.GEMM, (8, 8, 64)))
        assert deep > 2.0 * shallow

    def test_scratchpad_spill_penalty(self):
        big_spad = ComputeAccelerator(scratchpad_bytes=1 << 20)
        tiny_spad = ComputeAccelerator(scratchpad_bytes=256)
        op = Op(OpKind.GEMM, (16, 16, 256))
        assert tiny_spad.op_cycles_detailed(op) > \
            2.0 * big_spad.op_cycles_detailed(op)

    def test_agrees_with_analytic_model_midsize(self, comp):
        # The default analytic model and the tiled model must agree
        # within ~3x on the op sizes the solver actually produces.
        for dims in ((12, 12, 6), (24, 24, 24), (48, 24, 24)):
            op = Op(OpKind.GEMM, dims)
            ratio = comp.op_cycles_detailed(op) / comp.op_cycles(op)
            assert 1.0 / 3.0 < ratio < 3.0, (dims, ratio)


class TestTiledTriangular:
    def test_syrk_cheaper_than_full_gemm(self, comp):
        syrk = comp.op_cycles_detailed(Op(OpKind.SYRK, (32, 16)))
        gemm = comp.op_cycles_detailed(Op(OpKind.GEMM, (32, 32, 16)))
        assert syrk < gemm

    def test_potrf_scales_superlinearly(self, comp):
        small = comp.op_cycles_detailed(Op(OpKind.POTRF, (8,)))
        large = comp.op_cycles_detailed(Op(OpKind.POTRF, (32,)))
        assert large > 4.0 * small

    def test_trsm_scales_with_rows(self, comp):
        few = comp.op_cycles_detailed(Op(OpKind.TRSM, (8, 16)))
        many = comp.op_cycles_detailed(Op(OpKind.TRSM, (64, 16)))
        assert many > 3.0 * few

    def test_vector_kernels(self, comp):
        trsv = comp.op_cycles_detailed(Op(OpKind.TRSV, (16,)))
        assert trsv > comp.rocc_overhead

    def test_scatter_falls_back_to_analytic(self, comp):
        op = Op(OpKind.SCATTER_ADD, (12, 12))
        assert comp.op_cycles_detailed(op) == comp.op_cycles(op)


class TestTiledModelShape:
    """Coverage for the tiled model's structural guarantees."""

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_gemm_monotone_in_each_dim(self, comp, axis):
        dims = [16, 16, 16]
        previous = 0.0
        for size in (4, 8, 16, 32, 64):
            dims[axis] = size
            cycles = comp.op_cycles_detailed(Op(OpKind.GEMM, tuple(dims)))
            assert cycles >= previous, (axis, size)
            previous = cycles

    @pytest.mark.parametrize("kind,dims_small,dims_big", [
        (OpKind.SYRK, (8, 8), (32, 32)),
        (OpKind.TRSM, (8, 8), (32, 32)),
        (OpKind.POTRF, (8,), (32,)),
        (OpKind.TRSV, (8,), (32,)),
        (OpKind.GEMV, (8, 8), (32, 32)),
    ])
    def test_other_kinds_monotone(self, comp, kind, dims_small, dims_big):
        assert comp.op_cycles_detailed(Op(kind, dims_big)) > \
            comp.op_cycles_detailed(Op(kind, dims_small))

    def test_spill_activates_past_scratchpad_capacity(self):
        comp = ComputeAccelerator()  # 32 KiB scratchpad, 4x4 tiles
        # Working set 4 * (2 * tile * k + tile^2) bytes: fits for small
        # k, exceeds capacity for huge k.
        fitting = Op(OpKind.GEMM, (4, 4, 64))
        spilling = Op(OpKind.GEMM, (4, 4, 64 * 1024))
        per_k_fit = (comp.op_cycles_detailed(fitting)
                     - comp.rocc_overhead) / 64
        per_k_spill = (comp.op_cycles_detailed(spilling)
                       - comp.rocc_overhead) / (64 * 1024)
        # Below capacity the reload factor is exactly 1 (double
        # buffering hides operand loads); past it, every pass stretches.
        assert per_k_spill > 2.0 * per_k_fit

    def test_spill_is_continuous_at_capacity(self):
        comp = ComputeAccelerator()
        # k just below / above the reload threshold: no cliff.
        k_at = (comp.scratchpad_bytes // 4 - 16) // 8  # working == spad
        below = comp.op_cycles_detailed(Op(OpKind.GEMM, (4, 4, k_at - 1)))
        above = comp.op_cycles_detailed(Op(OpKind.GEMM, (4, 4, k_at + 1)))
        assert above / below < 1.01

    @pytest.mark.parametrize("n,k", [(8, 8), (16, 16), (32, 8), (64, 32)])
    def test_syrk_cheaper_than_same_shape_gemm(self, comp, n, k):
        syrk = comp.op_cycles_detailed(Op(OpKind.SYRK, (n, k)))
        gemm = comp.op_cycles_detailed(Op(OpKind.GEMM, (n, n, k)))
        assert syrk < gemm

    def test_wider_array_faster_on_large_gemm(self):
        op = Op(OpKind.GEMM, (64, 64, 64))
        narrow = ComputeAccelerator(systolic_dim=4)
        wide = ComputeAccelerator(systolic_dim=8)
        assert wide.op_cycles_detailed(op) < narrow.op_cycles_detailed(op)
