"""Tests for marginal covariance queries on the live incremental engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factorgraph import BetweenFactorSE2, IsotropicNoise, \
    PriorFactorSE2
from repro.geometry import SE2
from repro.solvers import IncrementalEngine

NOISE = IsotropicNoise(3, 0.1)


def build_engine(n=8, closure=None, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    engine = IncrementalEngine(wildfire_tol=0.0, **kwargs)
    engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
    for i in range(1, n):
        guess = SE2(i + rng.normal(0, 0.1), rng.normal(0, 0.1), 0.0)
        factors = [BetweenFactorSE2(i - 1, i, SE2(1.0, 0.0, 0.0), NOISE)]
        if closure == i:
            factors.append(BetweenFactorSE2(
                0, i, SE2(float(i), 0.0, 0.0), NOISE))
        engine.update({i: guess}, factors)
    return engine


def dense_h(engine):
    dims = engine.dims
    offsets = np.concatenate([[0], np.cumsum(dims)]).astype(int)
    total = int(offsets[-1])
    h_full = np.zeros((total, total))
    for contrib in engine._lin.values():
        idx = np.concatenate([
            np.arange(offsets[p], offsets[p] + dims[p])
            for p in contrib.positions])
        h_full[np.ix_(idx, idx)] += contrib.hessian
    return h_full, offsets


class TestSolveWithRhs:
    def test_matches_dense_solve(self):
        engine = build_engine(closure=6)
        h_full, offsets = dense_h(engine)
        rng = np.random.default_rng(1)
        rhs_flat = rng.normal(size=h_full.shape[0])
        rhs = [rhs_flat[offsets[p]:offsets[p + 1]]
               for p in range(engine.num_positions)]
        x = engine.solve_with_rhs(rhs)
        expected = np.linalg.solve(h_full, rhs_flat)
        np.testing.assert_allclose(np.concatenate(x), expected,
                                   atol=1e-8)

    def test_does_not_mutate_state(self):
        engine = build_engine()
        before = [d.copy() for d in engine.delta]
        carry_before = [c.copy() for c in engine._carry]
        engine.solve_with_rhs([np.ones(d) for d in engine.dims])
        for a, b in zip(before, engine.delta):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(carry_before, engine._carry):
            np.testing.assert_array_equal(a, b)


class TestMarginalCovariance:
    def test_matches_dense_inverse(self):
        engine = build_engine(closure=5)
        h_full, offsets = dense_h(engine)
        h_inv = np.linalg.inv(h_full)
        for key in (0, 3, 7):
            pos = engine.pos_of[key]
            sl = slice(offsets[pos], offsets[pos + 1])
            np.testing.assert_allclose(engine.marginal_covariance(key),
                                       h_inv[sl, sl], atol=1e-8)

    def test_uncertainty_grows_without_closures(self):
        engine = build_engine(n=8)
        traces = [np.trace(engine.marginal_covariance(k))
                  for k in range(8)]
        assert all(a < b for a, b in zip(traces, traces[1:]))

    def test_closure_reduces_uncertainty(self):
        open_chain = build_engine(n=8)
        closed = build_engine(n=8, closure=7)
        assert (np.trace(closed.marginal_covariance(7))
                < np.trace(open_chain.marginal_covariance(7)))

    @given(st.integers(0, 2 ** 12), st.sampled_from([1, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_covariance_positive_definite(self, seed, max_vars):
        engine = build_engine(n=6, closure=4, seed=seed,
                              max_supernode_vars=max_vars)
        for key in range(6):
            cov = engine.marginal_covariance(key)
            eigenvalues = np.linalg.eigvalsh(cov)
            assert np.all(eigenvalues > 0)


class TestMarginalAfterStructureChange:
    """Regression: marginal queries route through the plan-based solve
    path and must be correct immediately after the cache recompiles."""

    def _check_all_marginals(self, engine):
        h_full, offsets = dense_h(engine)
        h_inv = np.linalg.inv(h_full)
        for key in sorted(engine.pos_of):
            pos = engine.pos_of[key]
            sl = slice(offsets[pos], offsets[pos + 1])
            np.testing.assert_allclose(engine.marginal_covariance(key),
                                       h_inv[sl, sl], atol=1e-8,
                                       err_msg=f"key {key}")

    def test_correct_after_loop_closure_update(self):
        engine = build_engine(n=10)
        engine.update(
            {}, [BetweenFactorSE2(0, 9, SE2(9.0, 0.0, 0.0), NOISE)])
        self._check_all_marginals(engine)

    def test_correct_after_cache_hit_relin(self):
        from repro.instrumentation import StepContext
        engine = build_engine(n=10, closure=6)
        ctx = StepContext()
        engine.update({}, [], relin_keys=[3, 4], context=ctx)
        assert ctx.plan_hits > 0 and ctx.plan_misses == 0
        self._check_all_marginals(engine)
