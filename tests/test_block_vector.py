"""Unit tests for the contiguous block-state container."""

import numpy as np
import pytest

from repro.state import BlockVector


class TestGrowth:
    def test_empty(self):
        bv = BlockVector()
        assert bv.num_blocks == 0
        assert bv.total_dim == 0
        assert len(bv) == 0
        assert list(bv) == []
        assert bv.to_blocks() == []

    def test_append_returns_position(self):
        bv = BlockVector()
        assert bv.append_block(3) == 0
        assert bv.append_block(2) == 1
        assert bv.num_blocks == 2
        assert bv.total_dim == 5
        assert bv.dim_of(0) == 3
        assert bv.dim_of(1) == 2

    def test_append_with_values(self):
        bv = BlockVector()
        bv.append_block(2, np.array([1.0, 2.0]))
        bv.append_block(3)
        np.testing.assert_array_equal(bv[0], [1.0, 2.0])
        np.testing.assert_array_equal(bv[1], [0.0, 0.0, 0.0])

    def test_growth_preserves_contents(self):
        bv = BlockVector()
        expected = []
        rng = np.random.default_rng(0)
        for i in range(200):
            vals = rng.normal(size=1 + i % 4)
            bv.append_block(len(vals), vals)
            expected.append(vals)
        for i, vals in enumerate(expected):
            np.testing.assert_array_equal(bv[i], vals)
        assert bv.total_dim == sum(len(v) for v in expected)

    def test_data_is_contiguous_and_trimmed(self):
        bv = BlockVector.from_blocks(
            [np.ones(2), np.full(3, 2.0), np.full(1, 3.0)])
        data = bv.data
        assert data.shape == (6,)
        np.testing.assert_array_equal(
            data, [1.0, 1.0, 2.0, 2.0, 2.0, 3.0])

    def test_zero_dim_block(self):
        bv = BlockVector()
        bv.append_block(2, np.ones(2))
        bv.append_block(0)
        bv.append_block(1, np.array([5.0]))
        assert bv.dim_of(1) == 0
        assert bv[1].shape == (0,)
        np.testing.assert_array_equal(bv.block_abs_max(), [1.0, 0.0, 5.0])


class TestSliceAliasing:
    def test_getitem_is_a_view(self):
        bv = BlockVector.from_blocks([np.zeros(3), np.zeros(2)])
        view = bv[1]
        view[:] = 7.0
        np.testing.assert_array_equal(bv.data[3:], [7.0, 7.0])

    def test_setitem_copies(self):
        bv = BlockVector.from_blocks([np.zeros(2)])
        src = np.array([1.0, 2.0])
        bv[0] = src
        src[:] = 9.0
        np.testing.assert_array_equal(bv[0], [1.0, 2.0])

    def test_negative_index(self):
        bv = BlockVector.from_blocks([np.ones(1), np.full(2, 4.0)])
        np.testing.assert_array_equal(bv[-1], [4.0, 4.0])

    def test_views_survive_growth_reads_via_reindex(self):
        # Views alias the buffer at the time of the call; after a
        # growth-triggered reallocation, re-index to get a fresh view.
        bv = BlockVector()
        bv.append_block(2, np.array([1.0, 2.0]))
        for _ in range(100):
            bv.append_block(3)
        np.testing.assert_array_equal(bv[0], [1.0, 2.0])

    def test_zero_helpers(self):
        bv = BlockVector.from_blocks([np.ones(2), np.ones(3)])
        bv.zero_block(0)
        np.testing.assert_array_equal(bv[0], [0.0, 0.0])
        np.testing.assert_array_equal(bv[1], [1.0, 1.0, 1.0])
        bv.zero_()
        assert bv.abs_max() == 0.0


class TestReductionsAndScatter:
    def test_abs_max(self):
        bv = BlockVector.from_blocks(
            [np.array([1.0, -5.0]), np.array([2.0])])
        assert bv.abs_max() == 5.0
        assert BlockVector().abs_max() == 0.0

    def test_block_abs_max_matches_per_block_norms(self):
        rng = np.random.default_rng(1)
        blocks = [rng.normal(size=rng.integers(1, 5)) for _ in range(50)]
        bv = BlockVector.from_blocks(blocks)
        expected = [float(np.max(np.abs(b))) for b in blocks]
        np.testing.assert_allclose(bv.block_abs_max(), expected)

    def test_indices_and_gather(self):
        bv = BlockVector.from_blocks(
            [np.array([1.0, 2.0]), np.array([3.0]), np.array([4.0, 5.0])])
        idx = bv.indices([2, 0])
        np.testing.assert_array_equal(idx, [3, 4, 0, 1])
        np.testing.assert_array_equal(bv.gather(idx), [4.0, 5.0, 1.0, 2.0])

    def test_scatter_add_accumulates_duplicates(self):
        bv = BlockVector.from_blocks([np.zeros(2), np.zeros(1)])
        idx = np.array([0, 0, 2], dtype=np.intp)
        bv.scatter_add(idx, np.array([1.0, 2.0, 5.0]))
        np.testing.assert_array_equal(bv.data, [3.0, 0.0, 5.0])

    def test_scatter_add_sign(self):
        bv = BlockVector.from_blocks([np.array([10.0, 10.0])])
        bv.scatter_add(np.array([0, 1], dtype=np.intp),
                       np.array([1.0, 2.0]), sign=-1.0)
        np.testing.assert_array_equal(bv[0], [9.0, 8.0])

    def test_scatter_then_grow_then_scatter(self):
        bv = BlockVector()
        bv.append_block(2)
        bv.scatter_add(bv.indices([0]), np.array([1.0, 1.0]))
        bv.append_block(2)
        bv.scatter_add(bv.indices([1]), np.array([2.0, 2.0]))
        np.testing.assert_array_equal(bv.data, [1.0, 1.0, 2.0, 2.0])


class TestErrors:
    def test_out_of_range(self):
        bv = BlockVector.from_blocks([np.zeros(1)])
        with pytest.raises(IndexError):
            bv[1]
        with pytest.raises(IndexError):
            bv[-2]

    def test_setitem_wrong_shape(self):
        bv = BlockVector.from_blocks([np.zeros(2)])
        with pytest.raises(ValueError):
            bv[0] = np.zeros(3)


class TestPermuteBlocks:
    def test_permutes_data_and_dims(self):
        bv = BlockVector.from_blocks(
            [np.array([1.0, 2.0]), np.array([3.0]),
             np.array([4.0, 5.0, 6.0])])
        # New position p holds what was at old_positions[p].
        bv.permute_blocks([2, 0, 1])
        np.testing.assert_array_equal(bv[0], [4.0, 5.0, 6.0])
        np.testing.assert_array_equal(bv[1], [1.0, 2.0])
        np.testing.assert_array_equal(bv[2], [3.0])
        assert bv.dim_of(0) == 3
        assert bv.dim_of(2) == 1
        assert bv.total_dim == 6

    def test_identity_is_noop(self):
        bv = BlockVector.from_blocks([np.array([1.0]), np.array([2.0])])
        bv.permute_blocks([0, 1])
        np.testing.assert_array_equal(bv[0], [1.0])
        np.testing.assert_array_equal(bv[1], [2.0])

    def test_empty(self):
        bv = BlockVector()
        bv.permute_blocks([])
        assert bv.num_blocks == 0

    def test_roundtrip_inverse(self):
        rng = np.random.default_rng(3)
        blocks = [rng.normal(size=1 + i % 3) for i in range(12)]
        bv = BlockVector.from_blocks(blocks)
        perm = rng.permutation(12)
        bv.permute_blocks(perm)
        inverse = np.empty(12, dtype=int)
        inverse[perm] = np.arange(12)
        bv.permute_blocks(inverse)
        for i, block in enumerate(blocks):
            np.testing.assert_array_equal(bv[i], block)

    def test_wrong_length_rejected(self):
        bv = BlockVector.from_blocks([np.zeros(2), np.zeros(1)])
        with pytest.raises(ValueError):
            bv.permute_blocks([0])

    def test_non_permutation_rejected(self):
        bv = BlockVector.from_blocks([np.zeros(2), np.zeros(1)])
        with pytest.raises(ValueError):
            bv.permute_blocks([0, 0])
