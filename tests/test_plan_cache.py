"""Step-plan cache behavior: reuse, invalidation, counters, auditing.

The plan/execute split (:mod:`repro.linalg.plan`) compiles each
supernode's symbolic elimination step once and reuses it while the
structure is unchanged.  These tests pin the cache's observable
contract: structure-unchanged rebuilds hit, structural changes miss and
recompile, counters flow into ``StepReport`` extras, and the auditor's
``plan-consistency`` invariant catches a corrupted cached plan.
"""

import numpy as np
import pytest

from repro.factorgraph import BetweenFactorSE2, IsotropicNoise, \
    PriorFactorSE2
from repro.geometry import SE2
from repro.instrumentation import StepContext
from repro.linalg import MultifrontalCholesky, SymbolicFactorization
from repro.linalg.plan import PlanCache, plans_equal
from repro.solvers import FixedLagSmoother, IncrementalEngine
from repro.solvers.linearize import linearize_graph
from repro.factorgraph import FactorGraph, Values
from repro.validate import InvariantViolation, audited

NOISE = IsotropicNoise(3, 0.1)


def build_engine(n=10, closure=None, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    engine = IncrementalEngine(wildfire_tol=0.0, **kwargs)
    engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
    for i in range(1, n):
        guess = SE2(i + rng.normal(0, 0.1), rng.normal(0, 0.1), 0.0)
        factors = [BetweenFactorSE2(i - 1, i, SE2(1.0, 0.0, 0.0), NOISE)]
        if closure == i:
            factors.append(BetweenFactorSE2(
                0, i, SE2(float(i), 0.0, 0.0), NOISE))
        engine.update({i: guess}, factors)
    return engine


class TestPlanCacheUnit:
    SIG = (("a",), ("b",), (), ())

    def _plan(self, signature):
        from repro.linalg.plan import compile_node_plan
        return compile_node_plan([0], [], [3], np.array([0, 3]),
                                 [], [], signature)

    def test_empty_lookup_misses(self):
        cache = PlanCache()
        assert cache.lookup(0, self.SIG) is None
        assert cache.counters() == (0, 1, 0)

    def test_store_then_hit(self):
        cache = PlanCache()
        plan = self._plan(self.SIG)
        cache.store(0, plan)
        assert cache.lookup(0, self.SIG) is plan
        assert cache.counters() == (1, 0, 1)
        assert len(cache) == 1

    def test_signature_mismatch_misses(self):
        cache = PlanCache()
        cache.store(0, self._plan(self.SIG))
        other = (("a",), ("b",), (("f", (0,), 3),), ())
        assert cache.lookup(0, other) is None
        assert cache.counters() == (0, 1, 1)

    def test_clear_drops_plans_keeps_counters(self):
        cache = PlanCache()
        cache.store(0, self._plan(self.SIG))
        cache.lookup(0, self.SIG)
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup(0, self.SIG) is None
        assert cache.counters() == (1, 1, 1)


class TestEnginePlanReuse:
    def test_first_updates_compile(self):
        ctx = StepContext()
        engine = IncrementalEngine(wildfire_tol=0.0)
        engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)],
                      context=ctx)
        assert ctx.plan_compiles >= 1
        assert ctx.plan_compiles == ctx.plan_misses
        assert ctx.plan_hits == 0

    def test_structure_unchanged_relin_hits_every_plan(self):
        engine = build_engine(n=12, closure=7)
        ctx = StepContext()
        info = engine.update({}, [], relin_keys=[4, 5], context=ctx)
        # Fluid relinearization tears nodes down and rebuilds them with
        # identical structure: every refactorization reuses its plan.
        assert info["refactored_nodes"] > 0
        assert ctx.plan_misses == 0
        assert ctx.plan_compiles == 0
        assert ctx.plan_hits == info["refactored_nodes"]
        engine.check_invariants()

    def test_structure_change_misses_then_hits(self):
        engine = build_engine(n=12)
        ctx = StepContext()
        engine.update(
            {}, [BetweenFactorSE2(2, 11, SE2(9.0, 0.0, 0.0), NOISE)],
            context=ctx)
        # The closure changes factor sets/patterns along the path:
        # those nodes recompile.
        assert ctx.plan_misses > 0
        assert ctx.plan_compiles == ctx.plan_misses
        ctx2 = StepContext()
        info = engine.update({}, [], relin_keys=[2, 11], context=ctx2)
        assert ctx2.plan_misses == 0
        assert ctx2.plan_hits == info["refactored_nodes"]
        engine.check_invariants()

    def test_counters_reach_report_extras(self):
        from repro.solvers import ISAM2
        solver = ISAM2(relin_threshold=0.05)
        report = solver.update({0: SE2()},
                               [PriorFactorSE2(0, SE2(), NOISE)])
        for key in ("plan_hits", "plan_misses", "plan_compiles",
                    "refactor_seconds"):
            assert key in report.extras
        assert report.extras["plan_compiles"] >= 1.0

    def test_recompiled_plan_equals_cached(self):
        engine = build_engine(n=8, closure=5)
        for node in engine.nodes.values():
            children = engine._children_nodes(node)
            factor_ids = tuple(
                index for p in node.positions
                for index in engine._factors_at.get(p, ()))
            fresh = engine._compile_plan(node, factor_ids, children,
                                         node.plan.signature)
            assert plans_equal(node.plan, fresh)


class TestPlanAudit:
    def test_clean_run_passes_audit(self):
        with audited() as aud:
            engine = build_engine(n=10, closure=6)
            engine.update({}, [], relin_keys=[3, 4])
        assert aud.checks > 0

    def test_corrupted_plan_is_caught(self):
        engine = build_engine(n=10)
        # Corrupt every cached plan in a way the signature cannot see
        # (the trace metadata is not part of the signature).
        for key in list(range(10)):
            plan = engine.plan_cache.peek(key)
            if plan is not None:
                plan.factor_trace = plan.factor_trace + ((1, 1),)
        with audited():
            with pytest.raises(InvariantViolation) as excinfo:
                engine.update({}, [], relin_keys=[8])
        assert excinfo.value.invariant == "plan-consistency"


class TestBatchSolverPlanReuse:
    def _problem(self, n=9):
        graph = FactorGraph()
        values = Values()
        graph.add(PriorFactorSE2(0, SE2(), NOISE))
        values.insert(0, SE2())
        for i in range(1, n):
            graph.add(BetweenFactorSE2(i - 1, i, SE2(1.0, 0.0, 0.0), NOISE))
            values.insert(i, SE2(i + 0.1, 0.05, 0.0))
        keys = sorted(values.keys())
        position_of = {k: i for i, k in enumerate(keys)}
        dims = [values.at(k).dim for k in keys]
        symbolic = SymbolicFactorization(
            dims, [sorted(position_of[k] for k in f.keys)
                   for f in graph.factors()])
        contributions = linearize_graph(graph.factors(), values,
                                        position_of)
        return symbolic, contributions

    def test_second_factorize_hits_every_plan(self):
        symbolic, contributions = self._problem()
        solver = MultifrontalCholesky(symbolic, damping=1e-9)
        solver.factorize(contributions)
        n_nodes = len(symbolic.supernodes)
        assert solver.plan_counters == (0, n_nodes, n_nodes)
        first = [la.copy() for la in solver._l_a]
        solver.factorize(contributions)
        assert solver.plan_counters == (n_nodes, n_nodes, n_nodes)
        for a, b in zip(first, solver._l_a):
            assert np.array_equal(a, b)

    def test_shared_cache_across_instances(self):
        symbolic, contributions = self._problem()
        cache = PlanCache()
        n_nodes = len(symbolic.supernodes)
        MultifrontalCholesky(symbolic, damping=1e-9,
                             plan_cache=cache).factorize(contributions)
        MultifrontalCholesky(symbolic, damping=1e-3,
                             plan_cache=cache).factorize(contributions)
        # Damping differs but plans are damping-independent: the second
        # instance reuses every plan the first compiled.
        assert cache.counters() == (n_nodes, n_nodes, n_nodes)


class TestFixedLagPlanReuse:
    def test_iterations_reuse_plans_within_step(self):
        solver = FixedLagSmoother(window=6, iterations=3)
        ctx = StepContext()
        solver.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)],
                      context=ctx)
        ctx = StepContext()
        solver.update({1: SE2(1.0, 0.0, 0.0)},
                      [BetweenFactorSE2(0, 1, SE2(1.0, 0.0, 0.0), NOISE)],
                      context=ctx)
        # Iteration 1 compiles, iterations 2 and 3 hit.
        assert ctx.plan_compiles == ctx.plan_misses > 0
        assert ctx.plan_hits == 2 * ctx.plan_compiles
