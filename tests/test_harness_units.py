"""Unit tests for harness utilities that benchmarks rely on."""

import pytest

from repro.experiments.common import format_table, sparkline
from repro.experiments.design_space import (
    _area_estimate,
    design_space_table,
    pareto_points,
)
from repro.experiments.scalability import scalability_table


class TestParetoPoints:
    def test_single_point_is_pareto(self):
        results = {(4, 2): {"numeric_seconds": 1.0, "area_um2": 10.0}}
        assert pareto_points(results) == [(4, 2)]

    def test_dominated_point_excluded(self):
        results = {
            (2, 1): {"numeric_seconds": 2.0, "area_um2": 10.0},
            (4, 1): {"numeric_seconds": 1.0, "area_um2": 5.0},  # dominates
        }
        assert pareto_points(results) == [(4, 1)]

    def test_tradeoff_points_both_kept(self):
        results = {
            (2, 1): {"numeric_seconds": 2.0, "area_um2": 5.0},
            (4, 1): {"numeric_seconds": 1.0, "area_um2": 10.0},
        }
        assert pareto_points(results) == [(2, 1), (4, 1)]

    def test_area_estimate_scales_with_mesh(self):
        assert _area_estimate(8, 1) > _area_estimate(4, 1)
        assert _area_estimate(4, 2) == pytest.approx(
            2 * _area_estimate(4, 1))

    def test_design_space_table_renders(self):
        results = {
            (2, 1): {"numeric_seconds": 2.0, "area_um2": 5e5},
            (4, 1): {"numeric_seconds": 1.0, "area_um2": 8e5},
        }
        table = design_space_table(results)
        assert "2x2, 1 sets" in table
        assert "Pareto" in table


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row padded to the same width

    def test_scalability_table(self):
        results = {0.05: {
            "steps": 100.0, "miss_rate": 0.0, "max_latency_ms": 1.0,
            "deferred": 10.0, "selected": 90.0,
            "deferred_fraction": 0.1, "final_rmse": 0.01}}
        table = scalability_table(results)
        assert "0.05" in table and "10.0%" in table


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == "(empty)"

    def test_width_wider_than_series(self):
        # With fewer values than columns, each value gets exactly one
        # bucket — the line must not stretch, repeat or drop values.
        values = [1.0, 10.0, 100.0]
        line = sparkline(values, width=60)
        assert len(line) == len(values)
        # Monotone series maps to monotone glyph levels.
        glyphs = " .:-=+*#%"
        levels = [glyphs.index(ch) for ch in line]
        assert levels == sorted(levels)
        assert levels[0] < levels[-1]

    def test_width_narrower_than_series_buckets_by_max(self):
        values = [0.0] * 10 + [100.0] + [0.0] * 9
        line = sparkline(values, width=5, log_scale=False)
        assert len(line) <= 5
        assert line.count("%") == 1  # the spike survives bucketing

    def test_shared_bounds_make_lines_comparable(self):
        low = sparkline([1.0, 1.0], bounds=(1.0, 100.0))
        high = sparkline([100.0, 100.0], bounds=(1.0, 100.0))
        assert set(low) == {" "}
        assert set(high) == {"%"}


class TestCliEdges:
    def test_solve_without_out(self, tmp_path, capsys):
        import os
        from repro.cli import main
        path = os.path.join(tmp_path, "g.g2o")
        main(["generate", "--dataset", "M3500", "--scale", "0.01",
              str(path)])
        capsys.readouterr()
        assert main(["solve", str(path), "--solver", "gn"]) == 0
        out = capsys.readouterr().out
        assert "final objective" in out
        assert "wrote" not in out

    def test_generate_requires_dataset(self):
        import pytest as _pytest
        from repro.cli import main
        with _pytest.raises(SystemExit):
            main(["generate", "out.g2o"])
