"""Tests for the platform cycle models, area and power tables."""

import pytest

from repro.hardware import (
    AREA_TABLE,
    ComputeAccelerator,
    MemoryAccelerator,
    PowerModel,
    area_summary,
    boom_cpu,
    comp_tile_area,
    embedded_gpu,
    mobile_cpu,
    mobile_dsp,
    peak_watts,
    platform_area,
    server_cpu,
    spatula_soc,
    supernova_soc,
)
from repro.hardware.power import SUPERNOVA_PEAK_W
from repro.hardware.registry import platform_spec
from repro.linalg.trace import Op, OpKind

GEMM_BIG = Op(OpKind.GEMM, (64, 64, 64))
GEMM_TINY = Op(OpKind.GEMM, (3, 3, 3))
MEMCPY = Op(OpKind.MEMCPY, (4096,))
SCATTER = Op(OpKind.SCATTER_ADD, (12, 12))


class TestCpuModels:
    def test_server_faster_than_boom_on_big_gemm(self):
        boom = boom_cpu()
        server = server_cpu()
        t_boom = boom.seconds(boom.host.op_cycles(GEMM_BIG))
        t_server = server.seconds(server.host.op_cycles(GEMM_BIG))
        assert t_server < t_boom / 5

    def test_dsp_beats_mobile_cpu_on_big_gemm(self):
        dsp = mobile_dsp()
        cpu = mobile_cpu()
        assert dsp.host.op_cycles(GEMM_BIG) < cpu.host.op_cycles(GEMM_BIG)

    def test_small_matrix_penalty(self):
        host = server_cpu().host
        # Effective throughput on a tiny GEMM is far below peak.
        cycles = host.op_cycles(GEMM_TINY)
        ideal = GEMM_TINY.flops / host.flops_per_cycle
        assert cycles > 3 * ideal

    def test_relin_and_symbolic_rates(self):
        host = boom_cpu().host
        assert host.relin_cycles(10) == 10 * host.relin_cycles_per_factor
        assert host.symbolic_cycles(4) == \
            4 * host.symbolic_cycles_per_column


class TestGpuModel:
    def test_launch_overhead_dominates_small_ops(self):
        gpu = embedded_gpu().host
        cycles = gpu.op_cycles(GEMM_TINY)
        assert cycles >= gpu.kernel_launch_cycles

    def test_gpu_wins_big_loses_small_vs_dsp(self):
        gpu = embedded_gpu()
        dsp = mobile_dsp()
        huge = Op(OpKind.GEMM, (256, 256, 256))
        t_gpu_big = gpu.seconds(gpu.host.op_cycles(huge))
        t_dsp_big = dsp.seconds(dsp.host.op_cycles(huge))
        assert t_gpu_big < t_dsp_big
        t_gpu_small = gpu.seconds(gpu.host.op_cycles(GEMM_TINY))
        t_dsp_small = dsp.seconds(dsp.host.op_cycles(GEMM_TINY))
        assert t_gpu_small > t_dsp_small


class TestComputeAccelerator:
    def test_gemm_cycles_scale_with_flops(self):
        comp = ComputeAccelerator()
        small = comp.op_cycles(Op(OpKind.GEMM, (8, 8, 8)))
        large = comp.op_cycles(Op(OpKind.GEMM, (32, 32, 32)))
        assert large > 8 * small * 0.5

    def test_rejects_memory_ops(self):
        comp = ComputeAccelerator()
        with pytest.raises(ValueError):
            comp.op_cycles(MEMCPY)
        assert not comp.supports(MEMCPY)

    def test_siu_scatter(self):
        with_siu = ComputeAccelerator(has_siu=True)
        assert with_siu.supports(SCATTER)
        cycles = with_siu.op_cycles(SCATTER)
        assert cycles < 12 * 12  # far better than 1 elem/cycle

    def test_no_siu_rejects_scatter(self):
        without = ComputeAccelerator(has_siu=False)
        assert not without.supports(SCATTER)
        with pytest.raises(ValueError):
            without.op_cycles(SCATTER)

    def test_triangular_less_efficient_than_gemm(self):
        comp = ComputeAccelerator()
        gemm = Op(OpKind.GEMM, (16, 16, 16))
        potrf = Op(OpKind.POTRF, (16,))
        # cycles per flop must be worse for POTRF.
        assert (comp.op_cycles(potrf) / potrf.flops
                > comp.op_cycles(gemm) / gemm.flops)


class TestMemoryAccelerator:
    def test_bandwidth_model(self):
        mem = MemoryAccelerator(bytes_per_cycle=32.0, setup_overhead=20.0)
        assert mem.op_cycles(Op(OpKind.MEMSET, (3200,))) == \
            pytest.approx(20.0 + 100.0)

    def test_rejects_compute(self):
        mem = MemoryAccelerator()
        with pytest.raises(ValueError):
            mem.op_cycles(GEMM_BIG)

    def test_mem_beats_host_cpu_on_memcpy(self):
        soc = supernova_soc()
        assert soc.mem.op_cycles(MEMCPY) < soc.host.op_cycles(MEMCPY)

    def test_pricing_key_cached(self):
        # Built once, then returned by identity (the runtime memoizes on
        # it per node, so cheap repeated access matters).
        for model in (MemoryAccelerator(), ComputeAccelerator()):
            first = model.pricing_key
            assert model.pricing_key is first


class TestSoCConfigs:
    def test_supernova_has_both_accels(self):
        soc = supernova_soc(2)
        assert soc.has_accelerators
        assert soc.offloads_memory_ops
        assert soc.accel_sets == 2

    def test_spatula_no_mem_no_siu(self):
        soc = spatula_soc(2)
        assert soc.has_accelerators
        assert not soc.offloads_memory_ops
        assert not soc.comp.has_siu

    def test_baselines_have_no_accels(self):
        for factory in (boom_cpu, mobile_cpu, mobile_dsp, server_cpu,
                        embedded_gpu):
            assert not factory().has_accelerators

    def test_seconds_conversion(self):
        soc = supernova_soc()
        assert soc.seconds(1.0e9) == pytest.approx(1.0)


class TestArea:
    def test_table_matches_paper(self):
        assert AREA_TABLE["boom_baseline"] == 1_262_000.0
        assert AREA_TABLE["comp_tile"] == 301_000.0
        assert AREA_TABLE["mem_tile"] == 51_000.0

    def test_one_set_is_40_percent_of_boom(self):
        summary = area_summary(accel_sets=1, cpu_tiles=1)
        assert summary["fraction_of_boom"] == pytest.approx(0.40, abs=0.01)

    def test_two_sets_two_cpus_is_80_percent(self):
        summary = area_summary(accel_sets=2, cpu_tiles=2)
        assert summary["fraction_of_boom"] == pytest.approx(0.80, abs=0.02)

    def test_siu_is_small(self):
        # The SIU adds ~3% of the COMP tile (paper Table 5).
        ratio = (AREA_TABLE["comp_sparse_index_unit"]
                 / AREA_TABLE["comp_tile"])
        assert ratio == pytest.approx(0.03, abs=0.005)


class TestParametricArea:
    def test_baseline_tile_matches_table(self):
        # At Table 3's design point the parametric model *is* Table 5.
        assert comp_tile_area() == AREA_TABLE["comp_tile"]

    def test_mesh_scales_quadratically(self):
        grown = comp_tile_area(systolic_dim=8) - comp_tile_area()
        assert grown == pytest.approx(3 * AREA_TABLE["comp_mesh"])

    def test_scratchpad_scales_linearly(self):
        grown = comp_tile_area(scratchpad_bytes=64 * 1024) \
            - comp_tile_area()
        assert grown == pytest.approx(
            AREA_TABLE["comp_scratchpad_accumulator"])

    def test_no_siu_subtracts_unit(self):
        assert comp_tile_area() - comp_tile_area(has_siu=False) == \
            AREA_TABLE["comp_sparse_index_unit"]

    def test_platform_area_matches_summary(self):
        for sets in (1, 2, 4):
            spec = platform_spec(f"SuperNoVA{sets}S")
            summary = area_summary(accel_sets=sets, cpu_tiles=sets)
            assert platform_area(spec) == summary["total_um2"]

    def test_boom_platform_uses_baseline(self):
        assert platform_area(platform_spec("BOOM")) == \
            AREA_TABLE["boom_baseline"]

    def test_cpu_platform_without_table_entry_raises(self):
        with pytest.raises(ValueError):
            platform_area(platform_spec("ServerCPU"))

    def test_spatula_drops_mem_tile_and_siu(self):
        nova = platform_area(platform_spec("SuperNoVA1S"))
        spatula = platform_area(platform_spec("Spatula1S"))
        assert nova - spatula == pytest.approx(
            AREA_TABLE["mem_tile"] + AREA_TABLE["comp_sparse_index_unit"])


class TestPower:
    def test_peak_is_syrk(self):
        model = PowerModel()
        assert model.peak_op_kind() is OpKind.SYRK
        syrk = Op(OpKind.SYRK, (16, 16))
        assert model.op_power(syrk) == pytest.approx(SUPERNOVA_PEAK_W)

    def test_supernova_far_below_gpu_power(self):
        from repro.hardware.power import EMBEDDED_GPU_RANGE_W, FPGA_RANGE_W
        assert SUPERNOVA_PEAK_W < FPGA_RANGE_W[0] / 10
        assert SUPERNOVA_PEAK_W < EMBEDDED_GPU_RANGE_W[0] / 40

    def test_energy_scales_with_cycles(self):
        model = PowerModel()
        op = Op(OpKind.GEMM, (8, 8, 8))
        assert model.op_energy(op, 2000.0) == \
            pytest.approx(2.0 * model.op_energy(op, 1000.0))

    def test_trace_energy_sums(self):
        model = PowerModel()
        pairs = [(Op(OpKind.GEMM, (8, 8, 8)), 100.0),
                 (Op(OpKind.MEMSET, (256,)), 50.0)]
        total = model.trace_energy(pairs)
        assert total == pytest.approx(
            sum(model.op_energy(op, c) for op, c in pairs))

    def test_memory_ops_cheaper_than_compute(self):
        model = PowerModel()
        assert (model.op_power(Op(OpKind.MEMSET, (1024,)))
                < model.op_power(Op(OpKind.GEMM, (8, 8, 8))))

    def test_peak_watts_pins_table_at_base_dim(self):
        # The parametric curve passes exactly through the published
        # 4x4-array peak.
        assert peak_watts(4) == SUPERNOVA_PEAK_W

    def test_peak_watts_array_fraction_scales_quadratically(self):
        # Static (non-array) power is the dim-independent floor.
        static = peak_watts(4) - (peak_watts(8) - peak_watts(4)) / 3.0
        assert static > 0.0
        for dim in (2, 8, 16):
            array = (peak_watts(dim) - static)
            assert array == pytest.approx(
                (peak_watts(4) - static) * (dim / 4.0) ** 2)
