"""Integration and edge-case tests across modules."""

import os

import numpy as np
import pytest

from repro.core import RAISAM2
from repro.datasets import (
    FrontendModel,
    OnlineRun,
    euroc_like_dataset,
    run_online,
)
from repro.factorgraph import (
    BetweenFactorSE2,
    IsotropicNoise,
    PriorFactorSE2,
)
from repro.geometry import SE2
from repro.hardware import boom_cpu, supernova_soc
from repro.linalg.trace import Op, OpKind, OpTrace
from repro.runtime import (
    NodeCostModel,
    RuntimeFeatures,
    execute_step,
)
from repro.solvers import ISAM2, IncrementalEngine
from repro.solvers.base import StepReport

NOISE = IsotropicNoise(3, 0.1)


class TestEurocLikeDataset:
    def test_counts_scale(self):
        small = euroc_like_dataset(scale=0.1)
        assert small.num_steps == 60
        assert small.is_3d

    def test_has_loop_closures(self):
        data = euroc_like_dataset(scale=0.5)
        long_edges = [f for step in data.steps for f in step.closures
                      if f.keys[1] - f.keys[0] > 60]
        assert len(long_edges) > 0

    def test_trajectory_stays_in_volume(self):
        data = euroc_like_dataset(scale=0.2, extent=4.0)
        for pose in data.ground_truth.values():
            assert np.all(np.abs(pose.t[:2]) <= 4.0 + 1e-9)

    def test_solvable(self):
        data = euroc_like_dataset(scale=0.1)
        solver = ISAM2(relin_threshold=0.05)
        run = run_online(solver, data, error_every=10)
        assert run.step_rmse[-1] < 0.2

    def test_frontend_model_near_constant(self):
        frontend = FrontendModel(base_ms=3.5, jitter_ms=0.4)
        seq = frontend.sequence_seconds(200)
        mean = np.mean(seq)
        assert abs(mean - 3.5e-3) < 3e-4
        assert np.std(seq) < 0.2 * mean


class TestExecutorEdgeCases:
    def test_empty_report(self):
        report = StepReport(step=0)
        latency = execute_step(report, boom_cpu())
        assert latency.total == 0.0

    def test_features_affect_numeric_only(self):
        engine = IncrementalEngine()
        trace = OpTrace()
        engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)],
                      trace=trace)
        for i in range(1, 12):
            trace = OpTrace()
            engine.update(
                {i: SE2(float(i), 0.0, 0.0)},
                [BetweenFactorSE2(i - 1, i, SE2(1.0, 0.0, 0.0), NOISE)],
                trace=trace)
        report = StepReport(step=11, relinearized_factors=3,
                            affected_columns=4, trace=trace,
                            node_parents={})
        soc = supernova_soc(2)
        fast = execute_step(report, soc, {}, RuntimeFeatures.all())
        slow = execute_step(report, soc, {}, RuntimeFeatures.none())
        assert fast.relinearization == slow.relinearization
        assert fast.symbolic == slow.symbolic
        assert fast.numeric <= slow.numeric

    def test_cpu_tiles_parallelize_relin(self):
        report = StepReport(step=0, relinearized_factors=100)
        one = execute_step(report, supernova_soc(1))
        four = execute_step(report, supernova_soc(4))
        assert four.relinearization == pytest.approx(
            one.relinearization / 4.0)


class TestOnlineRunProperties:
    def test_empty_run(self):
        run = OnlineRun(dataset="x", solver="y")
        assert run.irmse == 0.0
        assert run.max_over_steps == 0.0
        assert run.final_max_error == 0.0
        assert run.latency_seconds() == []

    def test_max_over_steps(self):
        run = OnlineRun(dataset="x", solver="y",
                        step_max_error=[0.1, 0.5, 0.2])
        assert run.max_over_steps == 0.5
        assert run.final_max_error == 0.2


class TestRaIsam2Validation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            RAISAM2(NodeCostModel(supernova_soc(1)),
                    selection_policy="greedy-by-size")

    def test_policies_run(self):
        for policy in ("relevance", "fifo", "random"):
            solver = RAISAM2(NodeCostModel(supernova_soc(1)),
                             target_seconds=1e-4,
                             selection_policy=policy)
            solver.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
            report = solver.update(
                {1: SE2(1.1, 0.1, 0.0)},
                [BetweenFactorSE2(0, 1, SE2(1.0, 0.0, 0.0), NOISE)])
            assert report.step == 1


class TestTraceAccounting:
    def test_ops_by_kind_counts(self):
        trace = OpTrace()
        node = trace.node(0, cols=4, rows_below=4)
        node.record(OpKind.GEMM, 4, 4, 4)
        node.record(OpKind.GEMM, 8, 8, 8)
        node.record(OpKind.MEMSET, 256)
        counts = trace.ops_by_kind()
        assert counts[OpKind.GEMM] == 2
        assert counts[OpKind.MEMSET] == 1

    def test_node_reuse_updates_dims(self):
        trace = OpTrace()
        trace.node(3, cols=4, rows_below=2)
        node = trace.node(3, cols=8, rows_below=1)
        assert node.cols == 8
        assert node.rows_below == 2
        assert len(trace) == 1

    def test_loose_ops_counted(self):
        trace = OpTrace()
        trace.loose.record(OpKind.TRSV, 12)
        assert trace.flops == Op(OpKind.TRSV, (12,)).flops


class TestEngineEdgeCases:
    def test_empty_update_is_noop(self):
        engine = IncrementalEngine()
        engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
        before = [d.copy() for d in engine.delta]
        info = engine.update({}, [])
        assert info["refactored_nodes"] == 0
        for b, a in zip(before, engine.delta):
            np.testing.assert_array_equal(b, a)

    def test_relin_of_unmoved_variable(self):
        engine = IncrementalEngine(wildfire_tol=0.0)
        engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
        engine.update({1: SE2(1.0, 0.0, 0.0)},
                      [BetweenFactorSE2(0, 1, SE2(1.0, 0.0, 0.0), NOISE)])
        # Perfect guess -> delta ~ 0; relinearizing is harmless.
        info = engine.update({}, [], relin_keys=[1])
        assert info["relinearized_variables"] == 1
        engine.check_invariants()

    def test_multiple_new_variables_one_step(self):
        engine = IncrementalEngine(wildfire_tol=0.0)
        factors = [PriorFactorSE2(0, SE2(), NOISE)]
        factors += [BetweenFactorSE2(i, i + 1, SE2(1.0, 0.0, 0.0), NOISE)
                    for i in range(4)]
        values = {i: SE2(float(i), 0.0, 0.0) for i in range(5)}
        engine.update(values, factors)
        engine.check_invariants()
        assert engine.num_positions == 5

    def test_node_parents_of_roots(self):
        engine = IncrementalEngine()
        engine.update({0: SE2()}, [PriorFactorSE2(0, SE2(), NOISE)])
        sids = list(engine.nodes.keys())
        parents = engine.node_parents(sids)
        assert parents[sids[0]] is None


class TestExperimentScaling:
    def test_dataset_scale_env(self, monkeypatch):
        from repro.experiments import common
        monkeypatch.setenv("REPRO_FULL", "1")
        assert common.dataset_scale("M3500") == 1.0
        monkeypatch.delenv("REPRO_FULL")
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert common.dataset_scale("M3500") == pytest.approx(0.05)

    def test_target_scales_with_dataset(self, monkeypatch):
        from repro.experiments import common
        monkeypatch.setenv("REPRO_FULL", "1")
        assert common.target_for("CAB2") == pytest.approx(1.0 / 30.0)
