"""Policy-layer gates.

The heart of this file is the dual-run equivalence suite: a frozen
verbatim copy of the pre-registry ``RAISAM2.plan_selection`` (hard-coded
if/elif policy dispatch) runs side by side with the registry-backed
solver over the same workload, and every per-step selection plan must
match **exactly** — same keys, same deferred/shed counts, and the same
charged float down to the last bit (atol 0).  That is the refactor's
no-behavior-change contract from DESIGN.md.
"""

import random

import numpy as np
import pytest

from repro.core import RAISAM2, StepBudget
from repro.core.ra_isam2 import SelectionPlan
from repro.core.relevance import RelinCostEstimator, relevance_scores
from repro.datasets import manhattan_dataset
from repro.hardware.registry import make_platform
from repro.policy import (
    SELECTION_POLICIES,
    SelectionContext,
    SelectionPolicy,
    SlamBoosterController,
    controller_names,
    make_budget_controller,
    make_selection_policy,
    register_budget_controller,
    register_selection_policy,
    selection_names,
)
from repro.runtime import NodeCostModel
from repro.solvers import ISAM2


class _LegacyRAISAM2(RAISAM2):
    """RA-ISAM2 with the pre-registry selection pass, frozen verbatim.

    ``plan_selection`` below is a byte-for-byte transplant of the
    dispatch this refactor replaced (modulo the attribute names holding
    the policy string and RNG); it is the equivalence oracle.
    """

    def __init__(self, *args, legacy_policy="relevance", legacy_seed=0,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self._legacy_policy = legacy_policy
        self._legacy_rng = random.Random(legacy_seed)

    def plan_selection(self, new_factors, budget_scale=1.0):
        budget = StepBudget(self.target_seconds, self.safety,
                            self.energy_budget_joules)
        estimator = RelinCostEstimator(
            self.engine, self.cost_model,
            numeric_speedup=self.cost_model.step_speedup())

        touched = set()
        for factor in new_factors:
            touched.update(k for k in factor.keys
                           if k in self.engine.pos_of)
        mandatory = estimator.mandatory_cost(touched)
        mandatory += self.cost_model.relin_seconds(len(new_factors))
        mandatory_joules = self._estimate_energy(mandatory)
        budget.charge_mandatory(mandatory, mandatory_joules)
        nominal = None
        if budget_scale < 1.0:
            nominal = StepBudget(self.target_seconds, self.safety,
                                 self.energy_budget_joules)
            nominal.charge_mandatory(mandatory, mandatory_joules)
            budget.scale_optional(budget_scale)

        candidates = relevance_scores(self.engine, self.score_floor)
        if self._legacy_policy == "fifo":
            candidates = sorted(
                candidates,
                key=lambda pair: self.engine.pos_of[pair[1]])
        elif self._legacy_policy == "random":
            candidates = list(candidates)
            self._legacy_rng.shuffle(candidates)
        selected = []
        deferred = 0
        shed = 0
        charged = mandatory
        for score, key in candidates:
            cost = estimator.relin_cost(key)
            joules = self._estimate_energy(cost)
            admitted = budget.charge(cost, joules)
            if nominal is not None and nominal.charge(cost, joules) \
                    and not admitted:
                shed += 1
            if admitted:
                selected.append(key)
                charged += cost
            else:
                deferred += 1
        return SelectionPlan(selected, deferred, shed, charged,
                             estimator.visits)


def _solver_pair(policy, seed=0, **kwargs):
    soc = make_platform("SuperNoVA1S")
    base = dict(target_seconds=2e-4, **kwargs)  # tight: the budget binds
    legacy = _LegacyRAISAM2(NodeCostModel(soc), legacy_policy=policy,
                            legacy_seed=seed, **base)
    current = RAISAM2(NodeCostModel(soc), selection_policy=policy,
                      selection_seed=seed, **base)
    return legacy, current


@pytest.mark.parametrize("policy", ["relevance", "fifo", "random"])
def test_legacy_dispatch_bit_identical(policy):
    """Registry policies replay the legacy dispatch charge for charge."""
    data = manhattan_dataset(scale=0.03)
    legacy, current = _solver_pair(policy)
    deferred_any = False
    for step in data.steps:
        # Degraded planning compared as a pure function first (both
        # sides consume one extra shuffle for 'random', staying phase-
        # locked), then the solo step is taken for real.
        plan_l = legacy.plan_selection(step.factors, budget_scale=0.6)
        plan_c = current.plan_selection(step.factors, budget_scale=0.6)
        assert plan_l.selected == plan_c.selected
        assert (plan_l.deferred, plan_l.shed) == \
            (plan_c.deferred, plan_c.shed)
        assert plan_l.charged == plan_c.charged  # atol 0, float order
        assert plan_l.visits == plan_c.visits
        report_l = legacy.update({step.key: step.guess}, step.factors)
        report_c = current.update({step.key: step.guess}, step.factors)
        assert report_l.deferred_variables == report_c.deferred_variables
        assert report_l.extras.get("estimated_seconds") == \
            report_c.extras.get("estimated_seconds")
        deferred_any |= report_c.deferred_variables > 0
    assert deferred_any, "budget never bound; the gate tested nothing"
    est_l, est_c = legacy.estimate(), current.estimate()
    assert set(est_l.keys()) == set(est_c.keys())
    for key in est_l.keys():
        a, b = est_l.at(key), est_c.at(key)
        assert np.array_equal(
            np.array([a.x, a.y, a.theta]),
            np.array([b.x, b.y, b.theta]))


# -- registry plumbing --------------------------------------------------

def test_unknown_selection_policy_lists_registry():
    soc = make_platform("SuperNoVA1S")
    with pytest.raises(ValueError) as err:
        RAISAM2(NodeCostModel(soc), selection_policy="bogus")
    for name in selection_names():
        assert name in str(err.value)
    with pytest.raises(ValueError) as err:
        ISAM2(selection_policy="bogus")
    assert "relevance" in str(err.value)


def test_unknown_budget_controller_lists_registry():
    with pytest.raises(ValueError) as err:
        make_budget_controller("bogus")
    for name in controller_names():
        assert name in str(err.value)
    soc = make_platform("SuperNoVA1S")
    with pytest.raises(ValueError):
        RAISAM2(NodeCostModel(soc), budget_controller="bogus")


def test_policy_instances_pass_through():
    policy = make_selection_policy("random", seed=7)
    assert make_selection_policy(policy) is policy
    ctl = make_budget_controller("slambooster")
    assert make_budget_controller(ctl) is ctl
    assert make_budget_controller(None).name == "fixed"


def test_register_selection_policy_guards():
    class Nameless(SelectionPolicy):
        pass

    with pytest.raises(ValueError):
        register_selection_policy(Nameless)
    with pytest.raises(ValueError):  # no silent shadowing of built-ins
        register_selection_policy(
            type("Fake", (SelectionPolicy,), {"name": "relevance"}))


def test_custom_selection_policy_end_to_end():
    class NewestFirst(SelectionPolicy):
        name = "newest_first"

        def rank(self, ctx):
            return sorted(ctx.candidates,
                          key=lambda pair: -ctx.engine.pos_of[pair[1]])

    register_selection_policy(NewestFirst)
    try:
        soc = make_platform("SuperNoVA1S")
        solver = RAISAM2(NodeCostModel(soc), target_seconds=2e-4,
                         selection_policy="newest_first")
        data = manhattan_dataset(scale=0.01)
        for step in data.steps:
            solver.update({step.key: step.guess}, step.factors)
        assert solver.selection_policy.name == "newest_first"
    finally:
        del SELECTION_POLICIES["newest_first"]


# -- StepBudget.scale_optional edge cases (regression) ------------------

def test_scale_optional_clamps_above_one():
    budget = StepBudget(1.0, 1.0)
    budget.charge_mandatory(0.4)
    budget.scale_optional(2.5)          # clamped to 1.0: no growth
    assert budget.remaining == pytest.approx(0.6)
    budget.scale_optional(1.0)
    assert budget.remaining == pytest.approx(0.6)


def test_scale_optional_rejects_negative():
    budget = StepBudget(1.0, 1.0)
    with pytest.raises(ValueError):
        budget.scale_optional(-0.5)
    assert budget.remaining == pytest.approx(1.0)  # untouched on error


def test_scale_optional_idempotent_when_exhausted():
    budget = StepBudget(1.0, 1.0, energy_budget_joules=2.0)
    budget.charge_mandatory(3.0, 1.0)   # time-exhausted, energy left
    remaining, energy = budget.remaining, budget.energy_remaining
    for _ in range(3):
        budget.scale_optional(0.5)      # repeated scaling: no-op
    assert budget.remaining == remaining
    assert budget.energy_remaining == energy  # not silently shrunk


# -- good_graph ---------------------------------------------------------

def test_good_graph_rank_is_a_permutation():
    soc = make_platform("SuperNoVA1S")
    solver = RAISAM2(NodeCostModel(soc), target_seconds=2e-4,
                     selection_policy="good_graph")
    data = manhattan_dataset(scale=0.02)
    for step in data.steps:
        solver.update({step.key: step.guess}, step.factors)
    candidates = relevance_scores(solver.engine, solver.score_floor)
    estimator = RelinCostEstimator(
        solver.engine, solver.cost_model,
        numeric_speedup=solver.cost_model.step_speedup())
    ranked = solver.selection_policy.rank(SelectionContext(
        engine=solver.engine, candidates=candidates,
        estimator=estimator))
    assert sorted(ranked) == sorted(candidates)
    # Rank-only mode (the fleet's cut) works without an estimator.
    rank_only = solver.selection_policy.rank(SelectionContext(
        engine=solver.engine, candidates=candidates))
    assert sorted(rank_only) == sorted(candidates)


# -- slambooster controller --------------------------------------------

def test_slambooster_backoff_boost_relax():
    ctl = SlamBoosterController(alpha=1.0, backoff=0.5, boost=2.0,
                                relax=0.5, min_scale=0.25, max_scale=3.0,
                                error_floor=0.1)
    # Overrunning the target: back off multiplicatively to the floor.
    for _ in range(5):
        ctl.observe({"estimated_seconds": 2.0,
                     "budget_target_seconds": 1.0,
                     "max_delta_norm": 0.0})
    assert ctl.target_scale() == pytest.approx(0.25)
    assert ctl.backoff_rounds == 5
    # Error high with latency headroom: boost up to the cap.
    for _ in range(6):
        ctl.observe({"estimated_seconds": 0.1,
                     "budget_target_seconds": 1.0,
                     "max_delta_norm": 0.5})
    assert ctl.target_scale() == pytest.approx(3.0)
    assert ctl.boosted_rounds == 6
    # Neutral rounds: geometric relaxation back toward 1.0.
    ctl.observe({"estimated_seconds": 0.1,
                 "budget_target_seconds": 1.0,
                 "max_delta_norm": 0.0})
    assert ctl.target_scale() == pytest.approx(2.0)


def test_slambooster_never_inflates_degraded_budget():
    """Fleet composition rule: controller scale caps at 1.0 whenever
    the fleet is shedding (budget_scale < 1)."""
    soc = make_platform("SuperNoVA1S")
    ctl = SlamBoosterController(alpha=1.0, boost=2.0, error_floor=0.01)
    solver = RAISAM2(NodeCostModel(soc), target_seconds=2e-4,
                     budget_controller=ctl)
    data = manhattan_dataset(scale=0.02)
    for step in data.steps:
        solver.update({step.key: step.guess}, step.factors)
    assert ctl.rounds == len(data.steps)
    ctl.scale = 2.0                     # force an inflated controller
    solver.plan_selection([], budget_scale=0.5)
    assert solver._last_target_scale == 1.0
    solver.plan_selection([], budget_scale=1.0)
    assert solver._last_target_scale == pytest.approx(2.0)


def test_register_budget_controller_roundtrip():
    from repro.policy import BUDGET_CONTROLLERS, BudgetController

    class Halver(BudgetController):
        name = "halver"

        def target_scale(self):
            return 0.5

    register_budget_controller(Halver)
    try:
        assert make_budget_controller("halver").target_scale() == 0.5
        with pytest.raises(ValueError):
            register_budget_controller(Halver)
    finally:
        del BUDGET_CONTROLLERS["halver"]
