"""Refactor-equivalence: the ported engine must reproduce the seed.

``tests/_seed_engine.py`` is a verbatim snapshot of the pre-refactor
incremental engine (list-of-arrays state, trace threading).  These tests
dual-run it against the current :class:`repro.solvers.ISAM2` on scaled
real datasets and require identical per-step delta trajectories and op
traces to ``atol=1e-9`` — the contiguous block-state port must not move
a single float operation.
"""

import numpy as np

from repro.datasets import cab1_dataset, manhattan_dataset
from repro.linalg.trace import OpTrace
from repro.solvers import ISAM2

from tests._seed_engine import SeedISAM2

ATOL = 1e-9


def _trace_signature(trace):
    """(sid -> [(kind, dims)...]) plus loose ops, order-preserving."""
    nodes = {sid: [(op.kind, op.dims) for op in node.ops]
             for sid, node in trace.nodes.items()}
    loose = [(op.kind, op.dims) for op in trace.loose.ops]
    return nodes, loose


def _dual_run(data, relin_threshold=0.05, wildfire_tol=1e-5):
    seed = SeedISAM2(relin_threshold=relin_threshold,
                     wildfire_tol=wildfire_tol)
    current = ISAM2(relin_threshold=relin_threshold,
                    wildfire_tol=wildfire_tol)
    for index, step in enumerate(data.steps):
        seed_trace = OpTrace()
        cur_trace = OpTrace()
        seed_report = seed.update({step.key: step.guess}, step.factors,
                                  trace=seed_trace)
        cur_report = current.update({step.key: step.guess}, step.factors,
                                    trace=cur_trace)

        # Work counters: both sides decided the same relinearization set
        # and refactored the same part of the tree.
        assert (cur_report.relinearized_variables
                == seed_report.relinearized_variables), f"step {index}"
        assert (cur_report.refactored_nodes
                == seed_report.refactored_nodes), f"step {index}"
        assert (cur_report.affected_columns
                == seed_report.affected_columns), f"step {index}"
        assert cur_report.node_parents == seed_report.node_parents

        # Identical op streams, node by node, in recording order.
        seed_nodes, seed_loose = _trace_signature(seed_trace)
        cur_nodes, cur_loose = _trace_signature(cur_trace)
        assert cur_nodes == seed_nodes, f"step {index}"
        assert cur_loose == seed_loose, f"step {index}"

        # Identical delta trajectory, position by position.
        seed_delta = seed.engine.delta
        cur_delta = current.engine.delta
        assert len(cur_delta) == len(seed_delta)
        for p in range(len(seed_delta)):
            np.testing.assert_allclose(
                cur_delta[p], seed_delta[p], atol=ATOL, rtol=0.0,
                err_msg=f"step {index}, position {p}")

    # Final estimates coincide too (retraction of identical deltas).
    seed_est = seed.estimate()
    cur_est = current.estimate()
    for key in seed_est.keys():
        np.testing.assert_allclose(
            cur_est.at(key).local(seed_est.at(key)),
            0.0, atol=ATOL)


class TestRefactorEquivalence:
    def test_m3500_scaled(self):
        self._check(manhattan_dataset(scale=0.02))

    def test_cab1_scaled(self):
        self._check(cab1_dataset(scale=0.1))

    def test_m3500_zero_wildfire(self):
        # wildfire_tol=0 forces full back-substitution every step,
        # exercising the vectorized dirty check's always-dirty path.
        data = manhattan_dataset(scale=0.012)
        _dual_run(data, relin_threshold=1e-3, wildfire_tol=0.0)

    @staticmethod
    def _check(data):
        _dual_run(data)


class TestSeedSnapshotIntegrity:
    def test_seed_engine_is_importable_and_runs(self):
        data = manhattan_dataset(scale=0.01)
        solver = SeedISAM2(relin_threshold=0.05)
        for step in data.steps:
            solver.update({step.key: step.guess}, step.factors)
        assert len(list(solver.estimate().keys())) == len(data.steps)
