"""Paper Figure 12: per-step MAX and RMS error curves.

For each dataset, the per-step error series of Local, Local+Global,
RA2S, and the incremental baseline against the per-step converged
reference.  The qualitative picture: Local drifts without bound,
Local+Global spikes at closures and corrects late, RA tracks the
incremental baseline closely.
"""

import numpy as np

from repro.experiments.accuracy import figure12, figure12_summary
from repro.experiments.common import DATASETS


def test_fig12_error_per_step(once, save_result):
    def run_all():
        return {name: figure12(name) for name in DATASETS}

    all_series = once(run_all)
    text = []
    for name, series in all_series.items():
        text.append(f"Figure 12 — {name}")
        text.append(figure12_summary(series))
        text.append("")
    save_result("fig12_error_curves", "\n".join(text))

    for name, series in all_series.items():
        local_max, local_rmse = series["Local"]
        ra_max, ra_rmse = series["RA2S"]
        in_max, in_rmse = series["In"]
        # Local's error grows over the run (drift): the late-run mean
        # exceeds the early-run mean.
        half = len(local_rmse) // 2
        if half > 2:
            assert (np.mean(local_rmse[half:])
                    > 0.8 * np.mean(local_rmse[:half]))
        # RA2S tracks the incremental baseline within an order of
        # magnitude while Local is far away at the end.
        assert ra_rmse[-1] < local_rmse[-1]
        # Every series has one sample per evaluated step.
        assert len(ra_rmse) == len(in_rmse) == len(local_rmse)
