"""Ablation: cost-model fidelity (DESIGN.md).

RA-ISAM2 budgets with the analytic node cost model (Section 4.3.3); for
the latency guarantee to hold, the estimates must correlate with — and
not chronically underestimate — the realized scheduled latency.
"""

from repro.experiments.ablations import cost_model_fidelity


def test_ablation_cost_model_fidelity(once, save_result):
    result = once(cost_model_fidelity)
    lines = [
        "Ablation — Algorithm-1 estimate vs realized latency (CAB2, 2 sets)",
        f"steps compared: {result['steps']:.0f}",
        f"mean estimate/realized ratio: {result['mean_ratio']:.2f}",
        f"p10 ratio: {result['p10_ratio']:.2f}",
        f"correlation: {result['correlation']:.3f}",
        f"fraction underestimated: {100 * result['underestimates']:.1f}%",
    ]
    save_result("ablation_cost_model", "\n".join(lines))

    assert result["steps"] > 10
    # Estimates track reality (strong positive correlation)...
    assert result["correlation"] > 0.5
    # ...and are conservative on average (the safety margin direction).
    assert result["mean_ratio"] > 0.8
