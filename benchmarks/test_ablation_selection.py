"""Ablation: the full selection/budget policy registry (DESIGN.md).

All rows spend the same budget; the paper's greedy most-relevant-first
ranking should achieve the lowest error because the most-drifted
variables carry the largest linearization error.  The row set comes
from the :mod:`repro.policy` registries: every selection policy in
registration order, plus one row per adaptive budget controller (run
with relevance selection).  A second table repeats the sweep on an
adversarial workload (kidnapped-robot relocalization bursts), where the
steady-state assumptions behind the rankings are deliberately violated.
"""

from repro.experiments.ablations import selection_policy_ablation
from repro.experiments.common import format_table


def _rows(results):
    return [[policy, f"{entry['irmse']:.5g}", f"{entry['max']:.5g}",
             f"{entry['deferred']:.0f}"]
            for policy, entry in results.items()]


def test_ablation_selection_policy(once, save_result):
    results = once(selection_policy_ablation)
    save_result("ablation_selection",
                "Ablation — selection policy under a tight budget "
                "(M3500, 1 set, 30% target)\n"
                + format_table(["Policy", "iRMSE", "MAX", "deferred"],
                               _rows(results)))

    # The registry rows are all present.
    for policy in ("relevance", "fifo", "random", "good_graph",
                   "slambooster"):
        assert policy in results
    # Every policy defers work under the tight budget (the budget binds).
    assert all(entry["deferred"] > 0 for entry in results.values())
    # Relevance ranking is at least as accurate as both alternatives.
    relevance = results["relevance"]["irmse"]
    assert relevance <= results["fifo"]["irmse"] * 1.05
    assert relevance <= results["random"]["irmse"] * 1.05


def test_ablation_selection_adversarial(once, save_result):
    results = once(selection_policy_ablation, "Kidnapped")
    save_result("ablation_selection_adversarial",
                "Ablation — selection policy on the kidnapped-robot "
                "workload (relocalization bursts, 1 set, 30% target)\n"
                + format_table(["Policy", "iRMSE", "MAX", "deferred"],
                               _rows(results)))

    for policy in ("relevance", "fifo", "random", "good_graph",
                   "slambooster"):
        assert policy in results
    # The relocalization bursts make the budget bind for every policy.
    assert all(entry["deferred"] > 0 for entry in results.values())
    # Sanity: every policy keeps the estimate bounded despite kidnaps.
    assert all(entry["irmse"] < 10.0 for entry in results.values())
