"""Ablation: relevance-ranked selection vs FIFO and random (DESIGN.md).

All policies spend the same budget; the paper's greedy
most-relevant-first ranking should achieve the lowest error because the
most-drifted variables carry the largest linearization error.
"""

from repro.experiments.ablations import selection_policy_ablation
from repro.experiments.common import format_table


def test_ablation_selection_policy(once, save_result):
    results = once(selection_policy_ablation)
    rows = [[policy, f"{entry['irmse']:.5g}", f"{entry['max']:.5g}",
             f"{entry['deferred']:.0f}"]
            for policy, entry in results.items()]
    save_result("ablation_selection",
                "Ablation — selection policy under a tight budget "
                "(M3500, 1 set, 30% target)\n"
                + format_table(["Policy", "iRMSE", "MAX", "deferred"],
                               rows))

    # Every policy defers work under the tight budget (the budget binds).
    assert all(entry["deferred"] > 0 for entry in results.values())
    # Relevance ranking is at least as accurate as both alternatives.
    relevance = results["relevance"]["irmse"]
    assert relevance <= results["fifo"]["irmse"] * 1.05
    assert relevance <= results["random"]["irmse"] * 1.05
