"""Serving-layer throughput gate: fleet vs isolated-session looping.

Drives the same 32-session identical-topology SE(2) workload through
(a) a plain loop of isolated per-session ``update()`` calls and (b) the
multi-tenant :class:`~repro.serving.fleet.SessionFleet` with every
sharing feature on.  Two assertions:

* **Bit-identity (always runs):** with degradation off, the fleet's
  per-session estimates must equal the isolated baseline's with
  ``atol=0`` — fusion, the shared plan cache and merged level
  scheduling are execution-strategy changes only.
* **Throughput floor (≥ 4 cores):** the fleet must clear ``3x``
  session-steps/second over the isolated loop at 32 concurrent
  sessions.  The win stacks fused-kernel fixed-cost amortization and
  cross-session plan reuse (31/32 of all plan compiles disappear) on
  top of merged-level parallelism; below 4 cores the parallel leg is
  noise-dominated, so the floor self-skips as specified.
"""

import os

import pytest

from repro.serving import (
    FleetConfig,
    compare_snapshots,
    default_solver_factory,
    fleet_workload,
    run_fleet,
    run_isolated,
)

SESSIONS = 32
STEPS = int(os.environ.get("REPRO_SERVE_STEPS", "25"))
MIN_SPEEDUP = 3.0


def test_fleet_bit_identical_at_scale(save_result):
    """The bit-identity gate — runs on any machine, any core count."""
    workloads = fleet_workload(SESSIONS, max(8, STEPS // 3))
    factory = default_solver_factory()
    iso = run_isolated(workloads, factory)
    flt, fleet = run_fleet(workloads, factory,
                           FleetConfig(degrade=False))
    compare_snapshots(iso.snapshots, flt.snapshots, atol=0.0)
    assert not fleet.dead_sessions
    hits, misses, compiles, deep = fleet.plan_cache.snapshot()
    assert deep == 0, "production hit path must stay hash-only"
    save_result(
        "serving_bit_identity",
        f"serving bit-identity: {SESSIONS} sessions x "
        f"{max(8, STEPS // 3)} steps identical at atol=0\n"
        f"shared plan cache: {hits} hits / {misses} misses / "
        f"{compiles} compiles / {deep} deep compares")


def test_fleet_throughput_floor(save_result):
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 cores for the throughput floor "
                    f"(have {cores})")
    workloads = fleet_workload(SESSIONS, STEPS)
    factory = default_solver_factory()
    # Warm NumPy/BLAS paths once so neither arm pays first-call costs.
    run_isolated(fleet_workload(2, 4), factory)

    iso = run_isolated(workloads, factory)
    flt, fleet = run_fleet(workloads, factory,
                           FleetConfig(degrade=False))
    speedup = flt.session_steps_per_second / iso.session_steps_per_second
    lines = [
        f"serving throughput @ {SESSIONS} sessions x {STEPS} steps "
        f"({cores} cores)",
        f"  isolated: {iso.elapsed:8.3f} s  "
        f"{iso.session_steps_per_second:10.1f} session-steps/s",
        f"  fleet:    {flt.elapsed:8.3f} s  "
        f"{flt.session_steps_per_second:10.1f} session-steps/s",
        f"  speedup:  {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)",
    ]
    agg = fleet.aggregates()
    lines.append("  " + " ".join(
        f"{key}={agg[key]:g}"
        for key in ("fleet_plan_hits", "fleet_plan_compiles",
                    "steps_completed", "sessions_dead")))
    save_result("serving_throughput", "\n".join(lines))
    assert flt.steps_completed == iso.steps_completed
    assert speedup >= MIN_SPEEDUP, \
        f"fleet speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor"
