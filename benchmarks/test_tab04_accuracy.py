"""Paper Table 4: accuracy of all methods on all datasets.

MAX and iRMSE against the per-step converged reference trajectory for
Local, Local+Global, RACPU, RA1S/RA2S/RA4S and the incremental baseline.
"""

from repro.experiments.accuracy import table4, table4_table
from repro.experiments.common import DATASETS


def test_tab04_accuracy(once, save_result):
    results = once(table4, DATASETS)
    save_result("tab04_accuracy",
                "Table 4 — MAX (m) and iRMSE (m) per method\n"
                + table4_table(results))

    for name, entry in results.items():
        # The local sliding window drifts: worst iRMSE of all methods.
        for method in ("RA1S", "RA2S", "RA4S", "In"):
            assert entry["Local"]["irmse"] > entry[method]["irmse"], \
                f"Local should be worst on {name} (vs {method})"
        # The resource-aware solvers beat the Local+Global baseline on
        # iRMSE (the headline Table 4 claim), and so does the idealized
        # incremental baseline.  (RA can even beat In on CAB1-style
        # datasets — the paper's Table 4 shows the same inversion.)
        assert entry["RA4S"]["irmse"] < entry["Local+Global"]["irmse"]
        assert entry["In"]["irmse"] < entry["Local+Global"]["irmse"]

    # Scalability with resources: 4 sets never worse than 1 set by more
    # than noise, and better somewhere.
    improvements = 0
    for name, entry in results.items():
        if name == "M3500":
            continue  # the paper's noted relinearization-bound exception
        assert entry["RA4S"]["irmse"] <= entry["RA1S"]["irmse"] * 1.25
        if entry["RA4S"]["irmse"] < entry["RA1S"]["irmse"]:
            improvements += 1
    assert improvements >= 1
