"""Paper Figure 2: frontend vs backend latency variability.

The frontend has a small, fixed per-frame cost while the backend latency
varies drastically from iteration to iteration — the motivation for the
whole system.
"""

from repro.experiments.breakdown import figure2


def test_fig02_backend_variability(once, save_result):
    result = once(figure2)
    lines = [
        "Figure 2 — per-iteration latency (EuRoC-like stream, server CPU)",
        f"frontend: mean {result['frontend_mean_ms']:.2f} ms, "
        f"std {result['frontend_std_ms']:.2f} ms",
        f"backend:  mean {result['backend_mean_ms']:.3f} ms, "
        f"std {result['backend_std_ms']:.3f} ms, "
        f"peak {result['backend_peak_ms']:.3f} ms",
    ]
    save_result("fig02_breakdown", "\n".join(lines))

    backend = result["backend_ms"]
    # Backend latency is highly variable: the peak dwarfs the mean.
    assert result["backend_peak_ms"] > 5.0 * result["backend_mean_ms"]
    # Relative variability: backend varies far more than the frontend.
    rel_backend = result["backend_std_ms"] / result["backend_mean_ms"]
    rel_frontend = result["frontend_std_ms"] / result["frontend_mean_ms"]
    assert rel_backend > 3.0 * rel_frontend
    assert len(backend) > 10
