"""Ablation: elimination ordering (DESIGN.md).

Chronological ordering enables the incremental engine (parents never
change under factor additions) at the cost of extra fill compared with
minimum degree; this bench quantifies the trade on the final M3500
graph.
"""

from repro.experiments.ablations import ordering_ablation
from repro.experiments.common import format_table


def test_ablation_elimination_ordering(once, save_result):
    results = once(ordering_ablation)
    rows = [[label,
             f"{entry['fill_nnz']:.0f}",
             f"{entry['tree_height']:.0f}",
             f"{entry['supernodes']:.0f}"]
            for label, entry in results.items()]
    save_result("ablation_ordering",
                "Ablation — elimination ordering (M3500 final graph)\n"
                + format_table(["Ordering", "fill nnz", "tree height",
                                "supernodes"], rows))

    chrono = results["chronological"]
    mindeg = results["minimum_degree"]
    # Minimum degree reduces batch fill; chronological pays fill for
    # incremental-update locality.
    assert mindeg["fill_nnz"] < chrono["fill_nnz"]
    assert chrono["fill_nnz"] < 20 * mindeg["fill_nnz"]
