"""Ablation: elimination ordering (DESIGN.md).

Chronological ordering enables the incremental engine (parents never
change under factor additions) at the cost of extra fill compared with
minimum degree; this bench quantifies the trade on the final M3500
graph across every registered ordering policy, including the
elimination-tree shape stats that govern inter-node parallelism.
"""

from repro.experiments.ablations import ordering_ablation
from repro.experiments.common import format_table


def test_ablation_elimination_ordering(once, save_result):
    results = once(ordering_ablation)
    rows = [[label,
             f"{entry['fill_nnz']:.0f}",
             f"{entry['tree_height']:.0f}",
             f"{entry['max_width']:.0f}",
             f"{entry['branch_nodes']:.0f}",
             f"{entry['supernodes']:.0f}"]
            for label, entry in results.items()]
    save_result("ablation_ordering",
                "Ablation — elimination ordering (M3500 final graph)\n"
                + format_table(["Ordering", "fill nnz", "tree height",
                                "max width", "branches", "supernodes"],
                               rows))

    chrono = results["chronological"]
    mindeg = results["minimum_degree"]
    ccolamd = results["constrained_colamd"]
    # Minimum degree reduces batch fill; chronological pays fill for
    # incremental-update locality.
    assert mindeg["fill_nnz"] < chrono["fill_nnz"]
    assert chrono["fill_nnz"] < 20 * mindeg["fill_nnz"]
    # Constrained COLAMD trades a suffix constraint for near-AMD fill and
    # a measurably bushier tree than the chronological chain: lower
    # height and real branching off the root path.
    assert ccolamd["fill_nnz"] < chrono["fill_nnz"]
    assert ccolamd["tree_height"] < chrono["tree_height"]
    assert ccolamd["branch_nodes"] >= 1
    assert ccolamd["max_width"] > chrono["max_width"]
