"""Paper Figure 3: representative SLAM backend latency breakdown.

Numeric operations dominate and most numeric time is GEMM-class work —
the justification for building COMP around a matrix engine.
"""

from repro.experiments.breakdown import figure3, figure3_table, \
    numeric_fraction


def test_fig03_backend_op_breakdown(once, save_result):
    fractions = once(figure3)
    save_result("fig03_op_breakdown",
                "Figure 3 — backend time by category (CAB2, BOOM)\n"
                + figure3_table(fractions))

    # Numeric work dominates the backend (paper: "the numeric operations
    # are dominant", motivating numeric-only acceleration).
    assert numeric_fraction(fractions) > 0.6
    # GEMM-class ops are the single largest numeric category.
    gemm = fractions.get("gemm", 0.0)
    others = [v for k, v in fractions.items()
              if k not in ("gemm", "relinearization", "symbolic")]
    assert all(gemm >= v for v in others)
