"""Microbenchmark: vectorized columnar pricing vs the scalar per-op loop.

Runs incremental ISAM2 over the scaled CAB1 session, collects every
supernode trace the backend emitted, and times the step-pricing path
both ways:

* scalar — the seed's per-op lane accumulation (``op_cycles`` on Op
  dataclasses, pre-materialized so the loop matches the seed's
  list-of-Ops storage), and
* vectorized — ``node_cycles`` over the columnar layout, with the
  per-trace lane caches cleared between iterations so the pricing math
  itself is what gets measured (column materialization stays warm: the
  columns are built once per trace by design).

Both paths price the SuperNoVA SoC (COMP/MEM/host lanes) and the BOOM
host (sequential baseline).  Asserts the combined speedup is at least
3x (the PR's acceptance floor).
"""

import time

import pytest

from repro.experiments.common import isam2_run
from repro.hardware import boom_cpu, supernova_soc
from repro.runtime.scheduler import (
    RuntimeFeatures,
    node_cycles,
    sequential_cycles,
)

REPEATS = 5
ITERATIONS = 10
MIN_SPEEDUP = 3.0


def _scalar_node_cycles(ops, soc, features):
    """The pre-refactor per-op lane accumulation."""
    comp = mem = host = 0.0
    for op in ops:
        if soc.has_accelerators and soc.comp.supports(op):
            comp += soc.comp.op_cycles(op)
        elif op.is_memory_op and soc.offloads_memory_ops:
            if features.hetero_overlap:
                mem += soc.mem.op_cycles(op)
            else:
                host += soc.mem.op_cycles(op)
        else:
            host += soc.host.op_cycles(op)
    return comp, mem, host


def _best_of(fn, repeats=REPEATS, iterations=ITERATIONS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="pricing-layer")
def test_pricing_speedup(once, save_result):
    run = isam2_run("CAB1")
    traces = [node for report in run.reports if report.trace is not None
              for node in report.trace.nodes.values()]
    num_ops = sum(trace.num_ops for trace in traces)
    assert traces and num_ops > 0

    nova = supernova_soc(2)
    boom = boom_cpu()
    features = RuntimeFeatures.all()
    # The seed stored each trace as a list of Op dataclasses; give the
    # scalar loop the same starting point so only pricing is timed.
    ops_lists = [list(trace.ops) for trace in traces]

    def scalar_step():
        for ops in ops_lists:
            _scalar_node_cycles(ops, nova, features)
        total = 0.0
        for ops in ops_lists:
            for op in ops:
                total += boom.host.op_cycles(op)
        return total

    def vectorized_step():
        for trace in traces:
            trace._lane_cache.clear()
            node_cycles(trace, nova, features)
        return sequential_cycles(traces, boom)

    # Both paths must agree before their speed is worth comparing.
    assert vectorized_step() == pytest.approx(scalar_step(), rel=1e-9)
    for trace in traces:
        for soc in (nova, boom):
            scalar = _scalar_node_cycles(list(trace.ops), soc, features)
            assert node_cycles(trace, soc, features) == \
                pytest.approx(scalar, rel=1e-9)

    def measure():
        scalar_seconds = _best_of(scalar_step)
        vector_seconds = _best_of(vectorized_step)
        return scalar_seconds, vector_seconds

    scalar_seconds, vector_seconds = once(measure)
    speedup = scalar_seconds / vector_seconds

    lines = [
        "pricing-layer microbenchmark "
        f"(CAB1 run, {len(traces)} node traces, {num_ops} ops, "
        "SuperNoVA lanes + BOOM sequential)",
        f"scalar     per-op loop:  "
        f"{1e3 * scalar_seconds / ITERATIONS:8.2f} ms/pricing pass",
        f"vectorized price_ops:    "
        f"{1e3 * vector_seconds / ITERATIONS:8.2f} ms/pricing pass",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    ]
    save_result("pricing_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized pricing only {speedup:.2f}x faster")
