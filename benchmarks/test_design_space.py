"""Design-space exploration bench (paper Section 4.2's configurability).

Sweeps the systolic array dimension and the number of accelerator sets
over the CAB2 workload's traces and reports the latency/area Pareto
front.
"""

from repro.experiments.design_space import (
    design_space_sweep,
    design_space_table,
    pareto_points,
)


def test_design_space_sweep(once, save_result):
    results = once(design_space_sweep)
    save_result("design_space",
                "Design-space sweep — CAB2 numeric latency vs area\n"
                + design_space_table(results))

    # Bigger arrays and more sets are each individually faster.
    for sets in (1, 2, 4):
        assert results[(8, sets)]["numeric_seconds"] < \
            results[(2, sets)]["numeric_seconds"]
    for dim in (2, 4, 8):
        assert results[(dim, 4)]["numeric_seconds"] < \
            results[(dim, 1)]["numeric_seconds"]
    # Area grows with both axes.
    assert results[(8, 1)]["area_um2"] > results[(2, 1)]["area_um2"]
    assert results[(4, 4)]["area_um2"] > results[(4, 1)]["area_um2"]

    # The Pareto front has at least the two extreme points.
    front = pareto_points(results)
    assert len(front) >= 2
    assert (2, 1) in front  # smallest area is never dominated
