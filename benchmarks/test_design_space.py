"""Design-space exploration bench (paper Section 4.2's configurability).

Two tiers:

* the legacy 9-point sweep over (systolic dim, accelerator sets) — kept
  as the byte-reproducible ``design_space.txt`` artifact, and
* the full trace-replay autotuner over all five axes (dim, sets, CPU
  tiles, LLC, DRAM bandwidth): >= 1000 configurations with a gated
  per-configuration throughput floor against realizing + pricing each
  configuration independently, and the requirement that the old Pareto
  front survives inside the new one.
"""

import time

from repro.experiments.autotune_report import (
    autotune_report,
    front_contains,
    recorded_workload,
)
from repro.experiments.common import isam2_run, price_run
from repro.experiments.design_space import (
    design_space_sweep,
    design_space_table,
    pareto_points,
)
from repro.hardware.autotune import DesignPoint, autotune, default_grid
from repro.hardware.registry import platform_spec
from repro.hardware.spec import realize

#: Autotuned configs must price at least this much faster than the
#: naive realize-and-price-per-config loop.
MIN_PER_CONFIG_SPEEDUP = 10.0


def test_design_space_sweep(once, save_result):
    results = once(design_space_sweep)
    save_result("design_space",
                "Design-space sweep — CAB2 numeric latency vs area\n"
                + design_space_table(results))

    # Bigger arrays and more sets are each individually faster.
    for sets in (1, 2, 4):
        assert results[(8, sets)]["numeric_seconds"] < \
            results[(2, sets)]["numeric_seconds"]
    for dim in (2, 4, 8):
        assert results[(dim, 4)]["numeric_seconds"] < \
            results[(dim, 1)]["numeric_seconds"]
    # Area grows with both axes.
    assert results[(8, 1)]["area_um2"] > results[(2, 1)]["area_um2"]
    assert results[(4, 4)]["area_um2"] > results[(4, 1)]["area_um2"]

    # The Pareto front has at least the two extreme points.
    front = pareto_points(results)
    assert len(front) >= 2
    assert (2, 1) in front  # smallest area is never dominated


def _naive_seconds_per_config(run, samples: int = 3) -> float:
    """Realize + price one configuration from scratch.

    An epsilon-perturbed ``rocc_overhead`` gives every sample a fresh
    ``pricing_key``, so the per-trace lane caches are cold — exactly the
    cost the old sweep paid per configuration.
    """
    total = 0.0
    for sample in range(samples):
        spec = platform_spec("SuperNoVA2S",
                             rocc_overhead=40.0 + 1e-9 * (sample + 1))
        start = time.perf_counter()
        soc = realize(spec)
        price_run(run, soc)
        total += time.perf_counter() - start
    return total / samples


def test_autotune_sweep(once, save_result):
    workload = recorded_workload("CAB2")
    grid = default_grid()
    assert len(grid) >= 1000

    def measure():
        start = time.perf_counter()
        result = autotune(workload, grid=grid)
        tuned_seconds = time.perf_counter() - start
        naive_seconds = _naive_seconds_per_config(isam2_run("CAB2"))
        return result, tuned_seconds, naive_seconds

    result, tuned_seconds, naive_seconds = once(measure)
    per_config = tuned_seconds / result.num_configs
    speedup = naive_seconds / per_config

    # The replay collapse is what makes the sweep tractable: pricing
    # only per distinct array dim, scheduling only per (dim, sets, llc,
    # dram) — tiles expand analytically.
    assert result.num_configs >= 1000
    assert result.distinct_pricings <= 4
    assert result.distinct_schedules * 4 <= result.num_configs

    # The legacy 9-point front must survive inside the new front (its
    # points sit at the grid's LLC/DRAM corner with tiles = sets).
    legacy = design_space_sweep()
    legacy_front = pareto_points(legacy)
    assert front_contains(result, legacy_front), (
        f"legacy front {legacy_front} not contained in autotuned front")

    # And the corner configs reproduce the legacy numeric latencies
    # exactly — same realized models, same schedules.
    for (dim, sets), entry in legacy.items():
        index = result.index_of(
            DesignPoint(systolic_dim=dim, accel_sets=sets,
                        cpu_tiles=sets))
        assert result.numeric_seconds[index] == entry["numeric_seconds"]

    lines = [
        autotune_report(result, top=16),
        "",
        f"throughput: {1e3 * per_config:.2f} ms/config autotuned vs "
        f"{1e3 * naive_seconds:.2f} ms/config naive "
        f"({speedup:.1f}x, floor {MIN_PER_CONFIG_SPEEDUP:.0f}x)",
        f"legacy 9-point front {legacy_front} contained: yes",
    ]
    save_result("autotune", "\n".join(lines))
    assert speedup >= MIN_PER_CONFIG_SPEEDUP, (
        f"autotuner only {speedup:.1f}x faster per config")
