"""Microbenchmark: level-scheduled parallel factorize vs serial.

Builds a deliberately bushy elimination tree — ``CHAINS`` independent
odometry chains with fat (``DIM``-dimensional) blocks, CCOLAMD-ordered —
so every level of the tree holds one front per chain and the frontal
kernels are large enough for numpy/LAPACK to release the GIL.  Then
times repeated numeric refactorizations (the plan cache is warmed first,
so only the numeric phase differs) with 1 worker vs ``WORKERS`` workers
through the identical ``MultifrontalCholesky`` code path.

Bit-identity between the two configurations is asserted **before** any
timing and always runs; the wall-clock floor is only enforced on hosts
with at least ``WORKERS`` cores (the speedup is meaningless on fewer —
the level scheduler still dispatches, but the pool is time-sliced).
"""

import os
import time

import numpy as np
import pytest

from repro.linalg import MultifrontalCholesky, SymbolicFactorization, \
    make_ordering_policy
from repro.linalg.cholesky import FactorContribution
from repro.linalg.trace import OpTrace

CHAINS = 8
LENGTH = 8
DIM = 48
WORKERS = 4
REPEATS = 5
ITERATIONS = 3
MIN_SPEEDUP = 2.0


def bushy_problem():
    """CHAINS independent chains of LENGTH poses with DIM-dim blocks."""
    keys = list(range(CHAINS * LENGTH))
    dims = {key: DIM for key in keys}
    factor_keys = []
    for chain in range(CHAINS):
        base = chain * LENGTH
        factor_keys.append((base,))                       # prior
        for i in range(LENGTH - 1):
            factor_keys.append((base + i, base + i + 1))  # odometry
    order = make_ordering_policy("constrained_colamd").order(
        keys, factor_keys)
    position_of = {key: p for p, key in enumerate(order)}
    symbolic = SymbolicFactorization.from_ordering(order, dims, factor_keys)

    rng = np.random.default_rng(42)
    contributions = []
    for fk in factor_keys:
        width = DIM * len(fk)
        jac = rng.standard_normal((width + DIM, width))
        rhs = rng.standard_normal(width + DIM)
        contributions.append(FactorContribution(
            sorted(position_of[key] for key in fk),
            jac.T @ jac, jac.T @ rhs, residual_dim=width + DIM))
    return symbolic, contributions


def _factorize_seconds(solver, contributions):
    start = time.perf_counter()
    solver.factorize(contributions)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="parallel")
def test_parallel_factorize_speedup(once, save_result):
    symbolic, contributions = bushy_problem()

    serial = MultifrontalCholesky(symbolic, workers=1)
    parallel = MultifrontalCholesky(symbolic, workers=WORKERS)

    # Bit-identity gate (always runs, independent of core count):
    # factors, solution, and op traces must match the serial path byte
    # for byte, and the parallel run must actually dispatch fronts.
    t1, tw = OpTrace(), OpTrace()
    serial.factorize(contributions, trace=t1)
    parallel.factorize(contributions, trace=tw)
    for sid in range(len(symbolic.supernodes)):
        assert serial._l_a[sid].tobytes() == parallel._l_a[sid].tobytes()
        assert serial._l_b[sid].tobytes() == parallel._l_b[sid].tobytes()
    x1 = serial.solve()
    xw = parallel.solve()
    for a, b in zip(x1, xw):
        assert a.tobytes() == b.tobytes()
    assert list(t1.nodes.keys()) == list(tw.nodes.keys())
    for sid in t1.nodes:
        assert (t1.nodes[sid].kind_codes().tobytes()
                == tw.nodes[sid].kind_codes().tobytes())
        assert (t1.nodes[sid].dims_matrix().tobytes()
                == tw.nodes[sid].dims_matrix().tobytes())
    assert parallel.level_stats.nodes > 0, "no fronts dispatched"
    levels = parallel.level_stats.levels

    cores = os.cpu_count() or 1
    if cores < WORKERS:
        pytest.skip(f"speedup floor needs >= {WORKERS} cores, have {cores}"
                    " (bit-identity asserted above)")

    # Plans are warm from the identity runs: both paths now time the
    # numeric phase only, interleaved so drift hits them equally.
    best = [float("inf"), float("inf")]

    def measure():
        for _ in range(REPEATS):
            for i, solver in enumerate((serial, parallel)):
                total = 0.0
                for _ in range(ITERATIONS):
                    total += _factorize_seconds(solver, contributions)
                best[i] = min(best[i], total)
        return best

    serial_seconds, parallel_seconds = once(measure)
    speedup = serial_seconds / parallel_seconds

    lines = [
        "level-scheduled parallel factorize microbenchmark "
        f"({CHAINS} chains x {LENGTH} poses, block dim {DIM}, "
        f"{len(symbolic.supernodes)} supernodes, "
        f"{levels} levels, CCOLAMD order)",
        f"serial (1 worker):      "
        f"{1e3 * serial_seconds / ITERATIONS:9.2f} ms/factorize",
        f"parallel ({WORKERS} workers):   "
        f"{1e3 * parallel_seconds / ITERATIONS:9.2f} ms/factorize",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x, "
        f"{cores} cores)",
    ]
    save_result("parallel_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"parallel factorize only {speedup:.2f}x faster")
