"""Ablation: supernode amalgamation cap (DESIGN.md).

Variable-sized supernodes are the key to mapping sparse factorization
onto the systolic COMP: single-variable nodes drown in per-op dispatch,
oversized nodes inflate the dense frontal work.
"""

from repro.experiments.ablations import amalgamation_ablation
from repro.experiments.common import format_table


def test_ablation_supernode_size(once, save_result):
    results = once(amalgamation_ablation)
    base = results[1]
    rows = [[str(cap), f"{1e3 * total:.2f}", f"{total / base:.3f}"]
            for cap, total in sorted(results.items())]
    save_result("ablation_amalgamation",
                "Ablation — supernode amalgamation cap (Sphere, 2 sets)\n"
                + format_table(["max vars/supernode", "numeric (ms)",
                                "vs cap=1"], rows))

    # Amalgamation beats one-variable-per-node...
    assert results[8] < results[1]
    # ...and the default (8) is at least as good as the extremes.
    assert results[8] <= min(results[1], results[16]) * 1.1
