"""Microbenchmark: contiguous block-state vs the seed list-of-arrays.

Streams scaled CAB2 through the seed engine (``tests/_seed_engine.py``,
a verbatim pre-refactor snapshot) and the current engine, then times the
two per-step bookkeeping hot spots the refactor vectorized:

* relevance scores — ``delta_norms`` (one ``np.maximum.reduceat`` vs a
  per-block Python dict comprehension), and
* the wildfire back-substitution sweep with nothing dirty (one fancy-
  indexed ``np.any`` per node vs a Python generator over the pattern).

Asserts the combined speedup is at least 1.5x (the PR's acceptance
floor).
"""

import time

import pytest

from repro.datasets import cab2_dataset
from repro.instrumentation import StepContext
from repro.solvers import ISAM2

from tests._seed_engine import SeedISAM2

SCALE = 0.2
REPEATS = 5
ITERATIONS = 60
MIN_SPEEDUP = 1.5


def _stream(solver, data):
    for step in data.steps:
        solver.update({step.key: step.guess}, step.factors)
    return solver


def _best_of(fn, repeats=REPEATS, iterations=ITERATIONS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="state-layer")
def test_bookkeeping_speedup(once, save_result):
    data = cab2_dataset(scale=SCALE)
    seed = _stream(SeedISAM2(relin_threshold=0.05), data).engine
    current = _stream(ISAM2(relin_threshold=0.05), data).engine
    assert len(current.delta) == seed.num_positions

    # Converge both wildfire sweeps so the timed region is the clean
    # dirty-check bookkeeping, not triangular math.
    seed._back_substitute([], None)
    current._back_substitute([], StepContext(None))
    ctx = StepContext(None)

    def seed_step():
        seed.delta_norms()
        seed._back_substitute([], None)

    def current_step():
        current.delta_norm_array()
        current._back_substitute([], ctx)

    def measure():
        seed_seconds = _best_of(seed_step)
        current_seconds = _best_of(current_step)
        return seed_seconds, current_seconds

    seed_seconds, current_seconds = once(measure)
    speedup = seed_seconds / current_seconds

    lines = [
        "state-layer bookkeeping microbenchmark "
        f"(CAB2 scale={SCALE}, {seed.num_positions} positions)",
        f"seed    delta_norms + wildfire sweep: "
        f"{1e6 * seed_seconds / ITERATIONS:9.1f} us/step",
        f"current delta_norms + wildfire sweep: "
        f"{1e6 * current_seconds / ITERATIONS:9.1f} us/step",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    ]
    save_result("state_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"contiguous state layer only {speedup:.2f}x faster")
