"""Paper Table 2: measured solver-class comparison.

The qualitative table (global consistency / bounded latency / loop
closure / resource awareness) is *measured* here rather than asserted:
each property is checked on a Sphere run of the corresponding solver.
"""

from repro.experiments.tables import table2, table2_table


def test_tab02_solver_class_properties(once, save_result):
    results = once(table2)
    save_result("tab02_solver_classes",
                "Table 2 — measured solver-class properties (Sphere)\n"
                + table2_table(results))

    # The paper's matrix, row by row.
    assert not results["Local"]["global_consistency"]
    assert not results["Local"]["loop_closure"]
    assert results["Local"]["bounded_latency"]

    assert results["Local+Global"]["loop_closure"]
    assert results["Local+Global"]["global_consistency"]
    # Only RA-ISAM2 combines bounded latency with global consistency.
    assert not results["Incremental"]["bounded_latency"]

    assert results["Incremental"]["global_consistency"]
    assert results["Incremental"]["loop_closure"]

    ra = results["RA-ISAM2"]
    assert ra["global_consistency"]
    assert ra["bounded_latency"]
    assert ra["loop_closure"]
    assert ra["resource_aware"]
    # RA-ISAM2 is the only resource-aware solver.
    assert not any(results[s]["resource_aware"]
                   for s in ("Local", "Local+Global", "Incremental"))
