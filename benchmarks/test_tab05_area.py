"""Paper Table 5: physical design and area analysis.

The 16 nm synthesis numbers are design-time constants; the bench
reproduces the table and its derived claim (1 CPU + 1 accelerator set =
40% of a BOOM core; 2 sets + 2 CPUs ~= 80%).
"""

from repro.experiments.common import format_table
from repro.experiments.tables import table5_rows
from repro.hardware import area_summary


def test_tab05_area_analysis(once, save_result):
    rows = once(table5_rows)
    save_result("tab05_area",
                "Table 5 — area (um^2, 16 nm)\n"
                + format_table(["Component", "Area (um^2)", "% of tile"],
                               rows))

    one_set = area_summary(accel_sets=1, cpu_tiles=1)
    two_sets = area_summary(accel_sets=2, cpu_tiles=2)
    assert abs(one_set["fraction_of_boom"] - 0.40) < 0.01
    assert abs(two_sets["fraction_of_boom"] - 0.80) < 0.02
