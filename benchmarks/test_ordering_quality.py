"""Ordering microbenchmark: quotient-graph AMD vs dense minimum degree.

The pre-AMD implementation updated a dense adjacency clique per pivot,
which is O(clique^2) per elimination and blows up on fill-heavy loopy
graphs.  The quotient-graph core tracks elements instead of explicit
fill edges, so ordering cost stays near-linear in the number of cliques.
This bench runs both on the same loopy pose graph and reports fill
quality plus ordering wall-time.
"""

import random
import time

from repro.experiments.common import format_table
from repro.linalg.ordering import amd_order, dense_minimum_degree_order
from repro.linalg.symbolic import SymbolicFactorization


def _loopy_graph(num_poses: int = 1000, closures: int = 700,
                 seed: int = 7):
    """Odometry chain plus random long-range loop closures."""
    rng = random.Random(seed)
    keys = list(range(num_poses))
    factor_keys = [(0,)]
    factor_keys += [(i, i + 1) for i in range(num_poses - 1)]
    for _ in range(closures):
        a = rng.randrange(num_poses)
        b = rng.randrange(num_poses)
        if a != b:
            factor_keys.append((min(a, b), max(a, b)))
    return keys, factor_keys


def _fill_of(order, factor_keys) -> float:
    symbolic = SymbolicFactorization.from_ordering(
        order, {k: 3 for k in order}, factor_keys)
    return symbolic.tree_stats()["fill_nnz"]


def test_ordering_quality(once, save_result):
    keys, factor_keys = _loopy_graph()

    def measure():
        out = {}
        for label, func in (("quotient_amd", amd_order),
                            ("dense_min_degree",
                             dense_minimum_degree_order)):
            start = time.perf_counter()
            order = func(keys, factor_keys)
            elapsed = time.perf_counter() - start
            out[label] = {"seconds": elapsed,
                          "fill_nnz": _fill_of(order, factor_keys)}
        return out

    results = once(measure)
    rows = [[label,
             f"{entry['fill_nnz']:.0f}",
             f"{1e3 * entry['seconds']:.1f}"]
            for label, entry in results.items()]
    save_result("ordering_quality",
                "Ordering microbenchmark — 1000 poses, ~700 closures\n"
                + format_table(["Algorithm", "fill nnz", "order ms"],
                               rows))

    amd = results["quotient_amd"]
    dense = results["dense_min_degree"]
    # Same greedy heuristic family: fill quality must stay comparable
    # (approximate degrees can differ slightly either way).
    assert amd["fill_nnz"] < 1.25 * dense["fill_nnz"]
    # The point of the rewrite: on a fill-heavy graph the quotient-graph
    # core must be clearly faster than the dense clique update.
    assert amd["seconds"] < 0.8 * dense["seconds"]
