"""Section 7: the scalability limit of resource-aware SLAM.

With a fixed per-step deadline, longer CAB2 histories force RA-ISAM2 to
defer (eventually drop) an increasing fraction of relinearization work —
the accuracy/real-time trade the paper discusses as future work.
"""

from repro.experiments.scalability import scalability_sweep, \
    scalability_table


def test_scalability_limit(once, save_result):
    results = once(scalability_sweep)
    save_result("scalability",
                "Section 7 — scalability under a fixed deadline (CAB2)\n"
                + scalability_table(results))

    scales = sorted(results)
    # The deadline is honored at every size...
    for entry in results.values():
        assert entry["miss_rate"] == 0.0
    # ...but the deferred fraction grows with the history length.
    fractions = [results[s]["deferred_fraction"] for s in scales]
    assert fractions[-1] > fractions[0]
    assert fractions[-1] > 0.2  # a substantial share is being dropped
