"""Microbenchmark: batched linearization vs the per-factor scalar loop.

Builds the full CAB1 graph (scale 0.5, the experiments default) and
times a complete relinearization sweep — every factor re-linearized at
the current values, exactly what ``IncrementalEngine._relinearize`` and
``linearize_graph`` do — through both paths:

* scalar — ``linearize_factor`` per factor (jacobians, whitening and
  ``J^T J`` one factor at a time), and
* batched — ``linearize_many`` (structure-of-arrays grouping with
  vectorized geometry kernels and one-shot Hessian assembly).

The two paths are asserted **bit-identical** before any timing (the
batched engine's contract, see ``repro.solvers.batch_linearize``), then
the speedup floor of 3x is enforced.
"""

import time

import numpy as np
import pytest

from repro.datasets import cab1_dataset
from repro.factorgraph.values import Values
from repro.solvers.batch_linearize import linearize_many
from repro.solvers.linearize import linearize_factor

SCALE = 0.5
REPEATS = 5
ITERATIONS = 3
MIN_SPEEDUP = 3.0


def _best_of(fn, repeats=REPEATS, iterations=ITERATIONS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="linearize")
def test_linearize_speedup(once, save_result):
    data = cab1_dataset(scale=SCALE)
    values = Values()
    factors = []
    for step in data.steps:
        values.insert(step.key, step.guess)
        factors.extend(step.factors)
    position_of = {k: i for i, k in enumerate(sorted(values.keys()))}

    def scalar():
        return [linearize_factor(f, values, position_of) for f in factors]

    def batched():
        return linearize_many(factors, values, position_of)[0]

    reference = scalar()
    candidates = batched()
    assert len(candidates) == len(reference)
    for ref, got in zip(reference, candidates):
        assert got.positions == ref.positions
        assert np.array_equal(got.hessian, ref.hessian)
        assert np.array_equal(got.gradient, ref.gradient)

    def measure():
        scalar_seconds = _best_of(scalar)
        batched_seconds = _best_of(batched)
        return scalar_seconds, batched_seconds

    scalar_seconds, batched_seconds = once(measure)
    speedup = scalar_seconds / batched_seconds

    lines = [
        "linearization microbenchmark "
        f"(CAB1 scale={SCALE}, {len(factors)} factors, "
        f"{len(position_of)} poses, full relinearization sweep)",
        f"scalar  per-factor loop:   "
        f"{1e3 * scalar_seconds / ITERATIONS:9.2f} ms/sweep",
        f"batched linearize_many:    "
        f"{1e3 * batched_seconds / ITERATIONS:9.2f} ms/sweep",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    ]
    save_result("linearize_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"batched linearization only {speedup:.2f}x faster")
