"""Paper Figure 10: per-step latency vs the real-time target.

ISAM2 vs RA-ISAM2 on the same SuperNoVA hardware+runtime with 1/2/4
accelerator sets.  The paper's claim: RA-ISAM2 always meets the target
while the incremental baseline misses it, worst with the fewest
accelerator sets.
"""

from repro.experiments.common import DATASETS
from repro.experiments.realtime import figure10, figure10_table


def test_fig10_target_satisfaction(once, save_result):
    results = once(figure10, DATASETS)
    save_result("fig10_realtime",
                "Figure 10 — latency distribution and target miss rate\n"
                + figure10_table(results))

    # RA-ISAM2 meets the (scaled) target on every dataset and resource
    # configuration.
    for name, entry in results.items():
        for sets in (1, 2, 4):
            assert entry[f"RA{sets}S"].miss_rate == 0.0, \
                f"RA missed target on {name} with {sets} sets"

    # The incremental baseline misses the deadline somewhere, and its
    # miss rate does not increase with more hardware.
    total_in_misses = sum(entry[f"In{sets}S"].miss_rate
                          for entry in results.values()
                          for sets in (1, 2, 4))
    assert total_in_misses > 0.0
    for name, entry in results.items():
        assert entry["In4S"].miss_rate <= entry["In1S"].miss_rate + 1e-9

    # Like the paper's CAB1 note: when latency allows, RA does *more*
    # work than the baseline (median latency is not lower everywhere).
    assert any(entry[f"RA{sets}S"].median >= entry[f"In{sets}S"].median
               for entry in results.values() for sets in (1, 2, 4))
