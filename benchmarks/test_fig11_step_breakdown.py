"""Paper Figure 11: execution-time breakdown of the backend step.

Mean per-step relinearization / symbolic / numeric / algorithm-overhead
latency for the incremental baseline and RA-ISAM2 on CAB2 and M3500 with
2 and 4 accelerator sets.
"""

from repro.experiments.realtime import (
    figure11,
    figure11_table,
    selection_overhead_percent,
)


def test_fig11_latency_breakdown(once, save_result):
    results = once(figure11)
    overhead = selection_overhead_percent()
    save_result(
        "fig11_step_breakdown",
        "Figure 11 — mean per-step latency breakdown\n"
        + figure11_table(results)
        + "\n\nRA-ISAM2 selection overhead: "
        + ", ".join(f"{k}={v:.2f}%" for k, v in overhead.items()))

    for name, entry in results.items():
        for config, means in entry.items():
            assert means["total"] > 0.0
        # More accelerator sets reduce the numeric component for the
        # incremental baseline (same work, more hardware).
        assert entry["In4S"]["numeric"] < entry["In2S"]["numeric"]

    # The selection pass is cheap (paper: 0.1% M3500 / 0.9% CAB2 —
    # scalable to large problems).
    for name, percent in overhead.items():
        assert percent < 5.0
