"""Microbenchmark: cached step-plans vs the pre-refactor per-factor loop.

Feeds CAB1 into the incremental engine, then times structure-unchanged
relinearization sweeps (``update({}, [], relin_keys=...)`` — every node
torn down and rebuilt with identical structure, the dominant fluid-
relinearization workload) through three refactorize paths:

* legacy — the pre-refactor phase-G body (``gather_indices`` /
  ``scatter_add_block`` per factor, per-node index recomputation), kept
  verbatim in a subclass below as the honest baseline,
* cold — the plan/execute path with the plan cache cleared before every
  sweep (measures compile overhead), and
* warm — the plan/execute path with full cache reuse (every sweep is
  all hits, asserted).

The legacy and plan paths are asserted **bit-identical** on deltas and
estimates before any timing, then the 3x floor is enforced on
warm-vs-legacy refactorize-phase time.
"""

import time

import numpy as np
import pytest
import scipy.linalg

from repro.datasets import cab1_dataset
from repro.instrumentation import StepContext
from repro.linalg.frontal import SingularHessianError, front_offsets, \
    gather_indices, scatter_add_block
from repro.linalg.trace import OpKind
from repro.solvers import IncrementalEngine

SCALE = 0.25
REPEATS = 5
ITERATIONS = 3
MIN_SPEEDUP = 3.0


def _legacy_factorize_front(front, m, trace=None):
    """Seed-era ``factorize_front`` (scipy triangular-solve wrapper),
    frozen here so the baseline does not inherit live-path kernel
    optimizations."""
    n_below = front.shape[0] - m
    a_block = front[:m, :m]
    try:
        l_a = np.linalg.cholesky(a_block)
    except np.linalg.LinAlgError as exc:
        raise SingularHessianError("not positive definite") from exc
    if trace is not None:
        trace.record(OpKind.POTRF, m)
    if n_below:
        b_block = front[m:, :m]
        l_b = scipy.linalg.solve_triangular(
            l_a, b_block.T, lower=True, check_finite=False).T
        c_update = front[m:, m:] - l_b @ l_b.T
        if trace is not None:
            trace.record(OpKind.TRSM, n_below, m)
            trace.record(OpKind.SYRK, n_below, m)
    else:
        l_b = np.zeros((0, m))
        c_update = np.zeros((0, 0))
    if trace is not None:
        trace.record(OpKind.MEMCPY, 4 * (m + n_below) * m)
    return l_a, l_b, c_update


class LegacyEngine(IncrementalEngine):
    """Engine with the pre-refactor phase G: per-factor assembly loops
    and per-sweep index recomputation, no compiled plans."""

    def _refactorize(self, fresh, ctx):
        start = time.perf_counter()
        dims = self.dims
        fresh_nodes = sorted((self.nodes[sid] for sid in fresh),
                             key=lambda n: n.positions[0])
        for node in fresh_nodes:
            node.pos_idx = self.delta.indices(node.positions)
            node.pattern_idx = self.delta.indices(node.pattern)
            node.pattern_arr = np.asarray(node.pattern, dtype=np.intp)
            node.positions_arr = np.asarray(node.positions, dtype=np.intp)
            own_dims = [dims[p] for p in node.positions]
            node.pos_starts = np.concatenate(
                [[0], np.cumsum(own_dims[:-1])]).astype(np.intp)

            offsets, m, front_size = front_offsets(
                node.positions, node.pattern, dims)
            front = np.zeros((front_size, front_size))
            node_trace = ctx.node(node.sid, cols=m,
                                  rows_below=front_size - m)
            if node_trace is not None:
                node_trace.record(OpKind.MEMSET,
                                  4 * front_size * front_size)

            for p in node.positions:
                for index in self._factors_at.get(p, ()):
                    contrib = self._lin[index]
                    idx = gather_indices(contrib.positions, dims, offsets)
                    scatter_add_block(front, idx, contrib.hessian)
                    if node_trace is not None:
                        df = contrib.hessian.shape[0]
                        node_trace.record(
                            OpKind.MEMCPY,
                            4 * contrib.residual_dim * (df + 1))
                        node_trace.record(OpKind.GEMM, df, df,
                                          contrib.residual_dim)
                        node_trace.record(OpKind.SCATTER_ADD, df, df)

            for child in self._children_nodes(node):
                idx = gather_indices(child.pattern, dims, offsets)
                scatter_add_block(front, idx, child.c_update)
                if node_trace is not None:
                    nc = child.c_update.shape[0]
                    node_trace.record(OpKind.SCATTER_ADD, nc, nc)

            if self.damping:
                front[np.arange(m), np.arange(m)] += self.damping

            l_a, l_b, c_update = _legacy_factorize_front(front, m,
                                                         node_trace)
            node.l_a, node.l_b, node.c_update = l_a, l_b, c_update

            rhs = (self._gradient.gather(node.pos_idx)
                   - self._carry.gather(node.pos_idx))
            node.y = scipy.linalg.solve_triangular(
                l_a, rhs, lower=True, check_finite=False)
            if node_trace is not None:
                node_trace.record(OpKind.TRSV, m)
            if node.pattern:
                node.v = l_b @ node.y
                self._carry.scatter_add(node.pattern_idx, node.v, 1.0)
                if node_trace is not None:
                    node_trace.record(OpKind.GEMV, node.v.size, m)
            else:
                node.v = None
        ctx.refactor_seconds += time.perf_counter() - start


def _feed(engine, data):
    for step in data.steps:
        engine.update({step.key: step.guess}, step.factors)
    return engine


def _sweep_seconds(engine, keys, clear_cache=False):
    """One full structure-unchanged relinearization sweep; returns the
    refactorize-phase time."""
    if clear_cache:
        engine.plan_cache.clear()
    ctx = StepContext()
    engine.update({}, [], relin_keys=keys, context=ctx)
    return ctx.refactor_seconds


def _best_of_interleaved(fns, repeats=REPEATS, iterations=ITERATIONS):
    """Best-of timing with the candidates interleaved per round, so
    machine drift (thermal, contention) hits every path equally."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            total = 0.0
            for _ in range(iterations):
                total += fn()
            best[i] = min(best[i], total)
    return best


@pytest.mark.benchmark(group="plan-cache")
def test_plan_cache_speedup(once, save_result):
    data = cab1_dataset(scale=SCALE)
    legacy = _feed(LegacyEngine(wildfire_tol=0.0), data)
    engine = _feed(IncrementalEngine(wildfire_tol=0.0), data)
    keys = sorted(engine.pos_of)

    # Bit-identity before timing: the plan path must reproduce the
    # legacy per-factor loop exactly, including after a relin sweep.
    for a, b in zip(legacy.delta.data, engine.delta.data):
        assert a == b
    legacy.update({}, [], relin_keys=keys)
    ctx = StepContext()
    engine.update({}, [], relin_keys=keys, context=ctx)
    assert ctx.plan_misses == 0, "warm sweep must reuse every plan"
    np.testing.assert_array_equal(legacy.delta.data, engine.delta.data)
    legacy_est = legacy.estimate()
    plan_est = engine.estimate()
    for key in keys:
        np.testing.assert_array_equal(
            legacy_est.at(key).local(plan_est.at(key)), 0.0)

    def measure():
        return _best_of_interleaved([
            lambda: _sweep_seconds(legacy, keys),
            lambda: _sweep_seconds(engine, keys, clear_cache=True),
            lambda: _sweep_seconds(engine, keys),
        ])

    legacy_seconds, cold_seconds, warm_seconds = once(measure)
    speedup = legacy_seconds / warm_seconds
    cold_speedup = legacy_seconds / cold_seconds

    lines = [
        "step-plan cache microbenchmark "
        f"(CAB1 scale={SCALE}, {len(keys)} poses, "
        f"{len(engine.nodes)} supernodes, "
        "structure-unchanged full relinearization sweep)",
        f"legacy per-factor loop:    "
        f"{1e3 * legacy_seconds / ITERATIONS:9.2f} ms/sweep",
        f"plan path, cold cache:     "
        f"{1e3 * cold_seconds / ITERATIONS:9.2f} ms/sweep "
        f"({cold_speedup:.2f}x)",
        f"plan path, warm cache:     "
        f"{1e3 * warm_seconds / ITERATIONS:9.2f} ms/sweep "
        f"({speedup:.2f}x)",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x)",
    ]
    save_result("plan_cache_speedup", "\n".join(lines))
    assert speedup >= MIN_SPEEDUP, (
        f"warm plan path only {speedup:.2f}x faster")
