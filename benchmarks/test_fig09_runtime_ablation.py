"""Paper Figure 9: runtime parallelism ablation.

Numeric latency as the runtime optimizations are enabled cumulatively:
heterogeneous COMP/MEM overlap, inter-node parallelism, intra-node
parallelism (Sphere and CAB2, 2 accelerator sets).  A second table
re-measures the inter-node attribution with the incremental engine
running under constrained COLAMD, separating what the scheduler
recovers from what the elimination ordering makes available.
"""

from repro.experiments.latency import (
    FIG9_CONFIGS,
    figure9,
    figure9_ordering,
    figure9_ordering_table,
    figure9_table,
)


def test_fig09_runtime_parallelism(once, save_result):
    results, ordering_results = once(
        lambda: (figure9(), figure9_ordering()))
    save_result(
        "fig09_runtime_ablation",
        "Figure 9 — numeric latency, normalized to no-parallelism\n"
        + figure9_table(results)
        + "\n\nInter-node attribution per elimination ordering\n"
        + figure9_ordering_table(ordering_results))

    labels = [label for label, _ in FIG9_CONFIGS]
    for name, per_config in results.items():
        values = [per_config[label] for label in labels]
        # Each optimization must not hurt, and the cumulative gain must
        # be substantial (paper: ~50% cumulative on 2 sets).
        for before, after in zip(values, values[1:]):
            assert after <= before * 1.001
        assert values[-1] < 0.65 * values[0]
        # Heterogeneous overlap alone is a ~10-20% gain (paper: 15.3%
        # Sphere / 11.4% CAB2).
        hetero_gain = 1.0 - values[1] / values[0]
        assert 0.03 < hetero_gain < 0.35

    for name, per_ordering in ordering_results.items():
        for ordering, entry in per_ordering.items():
            # Inter-node scheduling must never slow a run down.
            assert entry["inter_node"] <= entry["sequential"] * 1.001
        # Chronological trees are near-chains, so the scheduler has
        # little node-level concurrency to exploit; the bushier
        # constrained-COLAMD tree is what makes the inter-node row real.
        assert (per_ordering["constrained_colamd"]["gain_pct"]
                > per_ordering["chronological"]["gain_pct"])
        assert per_ordering["constrained_colamd"]["gain_pct"] > 5.0
