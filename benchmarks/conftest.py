"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures at the
configured dataset scale (see ``repro.experiments.common``), prints the
rows, saves them under ``benchmarks/results/`` and asserts the paper's
qualitative shape (who wins, directionality of trends).

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline, or read the saved files.  ``REPRO_FULL=1`` switches to
paper-size workloads (hours).
"""

import os

import pytest


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def save_result():
    """Write a benchmark's regenerated table to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under pytest-benchmark."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return _run
