"""Paper Section 6.5: power analysis.

SuperNoVA consumes 114 mW at its most power-intensive operation (the
symmetric rank-k update) versus 5-10 W embedded GPUs and 2.5-5 W FPGA
accelerators; the bench also reports whole-run energy on CAB1 from the
activity model.
"""

from repro.experiments.tables import power_analysis


def test_power_analysis(once, save_result):
    result = once(power_analysis)
    lines = [
        "Section 6.5 — power analysis",
        f"peak power: {1e3 * result['peak_watts']:.0f} mW "
        f"(during {result['peak_op']})",
        f"embedded GPU range: {result['gpu_range_watts']} W",
        f"FPGA range: {result['fpga_range_watts']} W",
        f"CAB1 run energy (accelerators): "
        f"{1e3 * result['run_energy_joules']:.3f} mJ",
        f"GPU-to-SuperNoVA power ratio: >= "
        f"{result['gpu_power_ratio']:.0f}x",
    ]
    save_result("power_analysis", "\n".join(lines))

    assert result["peak_watts"] == 0.114
    assert result["peak_op"] == "syrk"
    # Orders of magnitude below GPU and FPGA power envelopes.
    assert result["peak_watts"] < result["fpga_range_watts"][0] / 10
    assert result["peak_watts"] < result["gpu_range_watts"][0] / 40
    assert result["run_energy_joules"] > 0.0
