"""Paper Figure 8: SuperNoVA hardware vs six baseline platforms.

2 sets of SuperNoVA accelerators vs BOOM / Mobile CPU / Mobile DSP /
Server CPU / Embedded GPU / Spatula, running the same incremental
baseline on all four datasets.  Absolute numbers come from our cycle
models; the assertions pin the paper's qualitative claims.
"""

from repro.experiments.common import DATASETS
from repro.experiments.latency import (
    figure8,
    figure8_table,
    latency_reduction,
    normalize_to,
)


def test_fig08_platform_latency(once, save_result):
    results = once(figure8, DATASETS)
    reductions = "\n".join(
        f"SuperNoVA vs {base} ({metric}): "
        + ", ".join(f"{d}={v:.1f}%" for d, v in
                    latency_reduction(results, "SuperNoVA", base,
                                      metric).items())
        for base, metric in (("BOOM", "total"), ("ServerCPU", "total"),
                             ("EmbeddedGPU", "total"),
                             ("MobileDSP", "total"),
                             ("ServerCPU", "numeric"),
                             ("Spatula", "numeric"),
                             ("EmbeddedGPU", "numeric")))
    save_result("fig08_platforms",
                "Figure 8 — latency normalized to BOOM\n"
                + figure8_table(results) + "\n\n" + reductions)

    norm = normalize_to(results)
    for name in DATASETS:
        entry = norm[name]
        # SuperNoVA beats BOOM, the mobile CPU and the DSP everywhere.
        assert entry["SuperNoVA"]["total"] < entry["BOOM"]["total"]
        assert entry["SuperNoVA"]["total"] < entry["MobileCPU"]["total"]
        assert entry["SuperNoVA"]["total"] < entry["MobileDSP"]["total"]
        # SuperNoVA's numeric beats every baseline including Spatula
        # (the algorithm-aware co-design claim).
        for other in ("BOOM", "MobileCPU", "MobileDSP", "ServerCPU",
                      "EmbeddedGPU", "Spatula"):
            assert entry["SuperNoVA"]["numeric"] < entry[other]["numeric"]

    # M3500 is SuperNoVA's weak spot: the server CPU wins on *total*
    # there (in-order-host relinearization cost), and only there among
    # the CPU comparisons the paper highlights.
    assert norm["M3500"]["SuperNoVA"]["total"] > \
        norm["M3500"]["ServerCPU"]["total"]
    for name in ("Sphere", "CAB1", "CAB2"):
        assert norm[name]["SuperNoVA"]["total"] < \
            norm[name]["ServerCPU"]["total"]

    # The GPU's kernel-launch overhead makes it worst (relative to its
    # big-matrix strength) on the small-node CAB1 problem: it is no
    # better than the mobile CPU there.
    assert norm["CAB1"]["EmbeddedGPU"]["total"] > \
        0.6 * norm["CAB1"]["MobileCPU"]["total"]
